"""Tests for the fault-injection subsystem (repro.faults) and resilient
experiment execution (watchdog, run_many hardening)."""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig, QueueSettings, SchemeName
from repro.experiments.parallel import FailedResult, run_many
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import flexpass_queue_factory
from repro.faults import (
    BernoulliLoss,
    FaultCounters,
    FaultPlan,
    FaultyLink,
    GilbertElliottLoss,
    KindSelectiveLoss,
    LinkDownEvent,
    LinkFailureSpec,
    LinkLossSpec,
    LinkUpEvent,
    LossyLink,
    schedule_failure_events,
    splice,
)
from repro.core.flexpass import FlexPassParams, FlexPassReceiver, FlexPassSender
from repro.net.packet import Packet, PacketKind
from repro.net.topology import ClosSpec, DumbbellSpec, build_clos, build_dumbbell
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.units import GBPS, MB, MILLIS
from repro.transports.base import FlowSpec, FlowStats
from repro.transports.credit_feedback import CREDIT_PER_DATA
from repro.transports.dctcp import DctcpParams, DctcpReceiver, DctcpSender

from tests.util import Completions


def _pkt(kind=PacketKind.DATA, **kw):
    defaults = dict(flow_id=1, src=0, dst=1, size=1584)
    defaults.update(kw)
    return Packet(kind, **defaults)


def _drop_pattern(model, n=400):
    return [model.should_drop(_pkt()) for _ in range(n)]


# ------------------------------------------------------------- loss models


class TestLossModels:
    def test_bernoulli_rate(self):
        model = BernoulliLoss(0.25, np.random.default_rng(1))
        drops = sum(_drop_pattern(model, 4000))
        assert 800 < drops < 1200  # ~1000 expected

    def test_bernoulli_rejects_bad_p(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5, np.random.default_rng(1))

    def test_gilbert_elliott_deterministic_under_fixed_seed(self):
        def make():
            return GilbertElliottLoss(0.05, 0.3, np.random.default_rng(42))

        assert _drop_pattern(make()) == _drop_pattern(make())
        other = GilbertElliottLoss(0.05, 0.3, np.random.default_rng(43))
        assert _drop_pattern(other) != _drop_pattern(make())

    def test_gilbert_elliott_bursts(self):
        """Losses cluster: the burst count is far below the loss count."""
        model = GilbertElliottLoss(0.02, 0.25, np.random.default_rng(7))
        pattern = _drop_pattern(model, 5000)
        losses = sum(pattern)
        assert losses > 0
        assert model.bursts > 0
        # mean burst length 1/0.25 = 4 packets -> far fewer bursts than losses
        assert model.bursts < losses / 2

    def test_kind_selective_only_hits_selected_kinds(self):
        model = KindSelectiveLoss(BernoulliLoss(1.0, np.random.default_rng(1)),
                                  {PacketKind.CREDIT})
        assert not model.should_drop(_pkt(PacketKind.DATA))
        assert model.should_drop(_pkt(PacketKind.CREDIT))


# -------------------------------------------------------------- FaultyLink


class _SinkNode:
    def __init__(self):
        self.received = []

    def receive(self, pkt):
        self.received.append(pkt)


def _direct_link(sim, delay_ns=1000):
    from repro.net.link import Link

    sink = _SinkNode()
    return Link(sim, sink, delay_ns), sink


class TestFaultyLink:
    def test_passthrough_delivers(self):
        sim = Simulator()
        link, sink = _direct_link(sim)
        faulty = FaultyLink(link)
        faulty.carry(_pkt())
        sim.run()
        assert len(sink.received) == 1
        assert faulty.packets_delivered == 1

    def test_loss_model_drops(self):
        sim = Simulator()
        link, sink = _direct_link(sim)
        faulty = FaultyLink(link, loss=BernoulliLoss(1.0, np.random.default_rng(1)))
        faulty.carry(_pkt())
        sim.run()
        assert sink.received == []
        assert faulty.counters.injected_drops == 1

    def test_corruption_counted_at_nic_after_flight_time(self):
        sim = Simulator()
        link, sink = _direct_link(sim, delay_ns=500)
        faulty = FaultyLink(
            link, corruption=BernoulliLoss(1.0, np.random.default_rng(1)))
        faulty.carry(_pkt())
        assert faulty.counters.corrupted == 0  # still on the wire
        sim.run()
        assert sink.received == []
        assert faulty.counters.corrupted == 1

    def test_fail_discards_in_flight_and_blocks_new(self):
        sim = Simulator()
        link, sink = _direct_link(sim, delay_ns=1000)
        faulty = FaultyLink(link)
        faulty.carry(_pkt())
        assert faulty.in_flight() == 1
        faulty.fail()
        faulty.carry(_pkt())  # transmitted into a dead link
        sim.run()
        assert sink.received == []
        assert faulty.counters.discarded_in_flight == 1
        assert faulty.counters.dropped_link_down == 1
        faulty.restore()
        faulty.carry(_pkt())
        sim.run()
        assert len(sink.received) == 1

    def test_lossy_link_records_drops(self):
        sim = Simulator()
        link, sink = _direct_link(sim)
        lossy = LossyLink(link, lambda pkt: pkt.kind == PacketKind.DATA)
        lossy.carry(_pkt(PacketKind.DATA))
        lossy.carry(_pkt(PacketKind.ACK))
        sim.run()
        assert len(lossy.dropped) == 1
        assert len(sink.received) == 1

    def test_splice_is_idempotent(self):
        sim = Simulator()
        db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings()),
                            DumbbellSpec(n_pairs=1))
        first = splice(db.bottleneck,
                       loss=BernoulliLoss(0.0, np.random.default_rng(1)))
        second = splice(db.bottleneck)
        assert first is second
        assert db.bottleneck.link is first


# ----------------------------------------------- link failures + rerouting


def _flexpass_flow(sim, db, size=1 * MB):
    done = Completions()
    spec = FlowSpec(1, db.senders[0], db.receivers[0], size, 0,
                    scheme="flexpass", group="new")
    stats = FlowStats()
    params = FlexPassParams(
        max_credit_rate_bps=10 * GBPS * 0.5 * CREDIT_PER_DATA)
    FlexPassReceiver(sim, spec, stats, params, on_complete=done)
    sender = FlexPassSender(sim, spec, stats, params)
    sim.at(0, sender.start)
    return stats, done


class TestLinkFailureEvents:
    def test_flexpass_survives_mid_transfer_outage(self):
        """The acceptance scenario: dumbbell bottleneck dies mid-transfer,
        comes back, the flow completes exactly once, reroutes >= 1."""
        sim = Simulator()
        db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings(wq=0.5)),
                            DumbbellSpec(n_pairs=1))
        stats, done = _flexpass_flow(sim, db, size=2 * MB)
        counters = schedule_failure_events(sim, db.topo, [
            LinkDownEvent(1 * MILLIS, "swL", "swR"),
            LinkUpEvent(3 * MILLIS, "swL", "swR"),
        ])
        sim.run(until=120 * MILLIS)
        assert done.flow_ids == {1}
        assert stats.delivered_bytes == 2 * MB  # exactly once
        assert counters.reroutes >= 1
        assert counters.link_failures == 1 and counters.link_restores == 1
        assert (counters.discarded_in_flight + counters.dropped_link_down) > 0

    def test_dctcp_survives_mid_transfer_outage(self):
        sim = Simulator()
        db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings()),
                            DumbbellSpec(n_pairs=1))
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 2 * MB, 0,
                        scheme="dctcp")
        stats = FlowStats()
        DctcpReceiver(sim, spec, stats, DctcpParams(), on_complete=done)
        sender = DctcpSender(sim, spec, stats, DctcpParams())
        sim.at(0, sender.start)
        counters = schedule_failure_events(sim, db.topo, [
            LinkDownEvent(1 * MILLIS, "swL", "swR"),
            LinkUpEvent(3 * MILLIS, "swL", "swR"),
        ])
        sim.run(until=200 * MILLIS)
        assert done.flow_ids == {1}
        assert stats.delivered_bytes == 2 * MB
        assert counters.reroutes >= 1
        assert stats.timeouts >= 1  # the outage forced the RTO path

    def test_clos_reroutes_around_failed_uplink(self):
        """With two aggs per pod, killing one ToR uplink leaves an
        equal-cost alternative: routes reconverge and traffic flows on."""
        sim = Simulator()
        spec = ClosSpec(n_pods=2, aggs_per_pod=2, tors_per_pod=1,
                        hosts_per_tor=1)
        clos = build_clos(sim, flexpass_queue_factory(QueueSettings(wq=0.5)),
                          spec)
        tor = clos.tors[0][0]
        agg = clos.aggs[0][0]
        hops_before = dict(tor.next_hops)
        done = Completions()
        src, dst = clos.hosts[0], clos.hosts[1]
        fspec = FlowSpec(1, src, dst, 1 * MB, 0, scheme="flexpass",
                         group="new")
        stats = FlowStats()
        params = FlexPassParams(
            max_credit_rate_bps=10 * GBPS * 0.5 * CREDIT_PER_DATA)
        FlexPassReceiver(sim, fspec, stats, params, on_complete=done)
        sender = FlexPassSender(sim, fspec, stats, params)
        sim.at(0, sender.start)
        counters = schedule_failure_events(sim, clos.topo, [
            LinkDownEvent(200_000, tor.name, agg.name),
        ])
        sim.run(until=120 * MILLIS)
        # After the failure every route through the dead agg is gone.
        assert all(agg.id not in hops for hops in tor.next_hops.values())
        assert any(agg.id in hops for hops in hops_before.values())
        assert counters.reroutes >= 1
        assert done.flow_ids == {1}
        assert stats.delivered_bytes == 1 * MB

    def test_unknown_node_name_fails_at_setup(self):
        sim = Simulator()
        db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings()),
                            DumbbellSpec(n_pairs=1))
        with pytest.raises(KeyError):
            schedule_failure_events(sim, db.topo, [
                LinkDownEvent(0, "swL", "nonexistent")])


# ----------------------------------------------------------------- FaultPlan


def _faulty_cfg(**overrides):
    base = dict(
        scheme=SchemeName.FLEXPASS,
        deployment=0.5,
        load=0.4,
        sim_time_ns=2 * MILLIS,
        size_scale=16.0,
        seed=5,
        clos=ClosSpec(n_pods=2, aggs_per_pod=1, tors_per_pod=2,
                      hosts_per_tor=2),
        faults=FaultPlan(
            losses=(LinkLossSpec(model="gilbert", rate=1.0,
                                 burst_start=0.002, burst_end=0.2,
                                 kinds=("data",)),),
            failures=(LinkFailureSpec(a="tor0.0", b="agg0.0",
                                      down_ns=500_000, up_ns=1_000_000),),
        ),
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestFaultPlan:
    def test_plan_is_picklable(self):
        import pickle

        cfg = _faulty_cfg()
        assert pickle.loads(pickle.dumps(cfg)).faults == cfg.faults

    def test_seeded_run_is_bit_for_bit_reproducible(self):
        r1 = run_experiment(_faulty_cfg())
        r2 = run_experiment(_faulty_cfg())
        assert r1.fault_counters == r2.fault_counters
        assert r1.fault_counters.injected_drops > 0
        f1 = [(r.flow_id, r.fct_ns, r.retransmissions) for r in r1.records]
        f2 = [(r.flow_id, r.fct_ns, r.retransmissions) for r in r2.records]
        assert f1 == f2

    def test_different_seed_different_faults(self):
        r1 = run_experiment(_faulty_cfg(seed=5))
        r2 = run_experiment(_faulty_cfg(seed=6))
        assert [(r.flow_id, r.fct_ns) for r in r1.records] != \
               [(r.flow_id, r.fct_ns) for r in r2.records]

    def test_failures_counted_in_result(self):
        res = run_experiment(_faulty_cfg())
        assert res.fault_counters.link_failures == 1
        assert res.fault_counters.link_restores == 1
        assert res.fault_counters.reroutes == 2

    def test_corrupt_spec_counts_at_nic(self):
        cfg = _faulty_cfg(faults=FaultPlan(
            losses=(LinkLossSpec(rate=0.05, corrupt=True, kinds=("data",)),)))
        res = run_experiment(cfg)
        assert res.fault_counters.corrupted > 0
        assert res.fault_counters.injected_drops == 0

    def test_bad_link_pattern_raises(self):
        cfg = _faulty_cfg(faults=FaultPlan(
            losses=(LinkLossSpec(links="nope->nowhere*"),)))
        with pytest.raises(ValueError):
            run_experiment(cfg)

    def test_fault_annotation_marks_degraded_runs(self):
        from repro.metrics.summary import degraded_title, fault_annotation

        res = run_experiment(_faulty_cfg())
        note = fault_annotation(res)
        assert "faults" in note and "reroutes" in note
        assert degraded_title("t", res).startswith("t [")
        clean = run_experiment(_faulty_cfg(faults=None))
        assert fault_annotation(clean) == ""


# ----------------------------------------------------------------- watchdog


class TestWatchdog:
    def test_max_events_aborts_with_reason(self):
        sim = Simulator()

        def reschedule():
            sim.after(10, reschedule)

        sim.after(0, reschedule)
        sim.run(max_events=100)
        assert sim.aborted
        assert "max_events" in sim.abort_reason

    def test_wall_clock_budget_aborts(self):
        sim = Simulator()

        def reschedule():
            sim.after(10, reschedule)

        sim.after(0, reschedule)
        sim.run(max_events=1_000_000, wall_clock_s=0.0)
        assert sim.aborted
        assert "wall-clock" in sim.abort_reason

    def test_clean_finish_is_not_an_abort(self):
        sim = Simulator()
        sim.after(5, lambda: None)
        sim.run(until=100, max_events=1000, wall_clock_s=60.0)
        assert not sim.aborted
        assert sim.now == 100

    def test_runner_returns_partial_result_flagged_aborted(self):
        cfg = _faulty_cfg(faults=None, max_events=5000)
        res = run_experiment(cfg)
        assert res.aborted
        assert "watchdog" in res.abort_reason
        assert res.events_run <= 5000
        assert len(res.records) >= 0  # partial but well-formed

    def test_abort_flag_resets_on_next_run(self):
        sim = Simulator()
        for i in range(10):
            sim.at(i, lambda: None)
        sim.run(max_events=3)
        assert sim.aborted
        sim.run()
        assert not sim.aborted


# ------------------------------------------------------ run_many resilience


def _poison_cfg():
    # workload_cdf() raises KeyError for an unknown workload inside the
    # worker -- a realistic "one config in the sweep is broken" case.
    return _faulty_cfg(faults=None, workload="no-such-workload")


class TestRunManyResilience:
    def test_serial_poisoned_config_yields_failed_result(self):
        cfgs = [_faulty_cfg(faults=None), _poison_cfg(),
                _faulty_cfg(faults=None, seed=7)]
        results = run_many(cfgs, processes=1)
        assert len(results) == 3
        assert not isinstance(results[0], FailedResult)
        assert isinstance(results[1], FailedResult)
        assert not isinstance(results[2], FailedResult)
        failed = results[1]
        assert failed.config.workload == "no-such-workload"
        assert "no-such-workload" in failed.traceback

    def test_pool_poisoned_config_does_not_crash(self):
        cfgs = [_faulty_cfg(faults=None), _poison_cfg()]
        results = run_many(cfgs, processes=2)
        assert len(results) == 2
        assert isinstance(results[1], FailedResult)
        assert results[0].completed > 0

    def test_retry_marks_deterministic_failures(self):
        results = run_many([_poison_cfg()], processes=1, retry_failed=True)
        assert isinstance(results[0], FailedResult)
        assert results[0].retried

    def test_faulted_configs_survive_the_pool(self):
        """A config carrying a FaultPlan pickles through workers and back."""
        cfgs = [_faulty_cfg(seed=s) for s in (5, 6)]
        results = run_many(cfgs, processes=2)
        assert all(not isinstance(r, FailedResult) for r in results)
        assert all(r.fault_counters.link_failures == 1 for r in results)
