"""Unit tests for the receiver-side credit pacer."""

import pytest

from repro.net.packet import Dscp, PacketKind
from repro.net.topology import DumbbellSpec, build_dumbbell
from repro.sim.engine import Simulator
from repro.sim.units import MILLIS, SECONDS
from repro.transports.base import FlowStats
from repro.transports.crediting import CreditPacer

from tests.test_net_port_topology import Recorder, single_queue_factory


def make_pacer(rate_bps=500e6, update_period=40_000):
    sim = Simulator()
    db = build_dumbbell(sim, single_queue_factory, DumbbellSpec(n_pairs=1))
    stats = FlowStats()
    pacer = CreditPacer(sim, 1, db.receivers[0], db.senders[0].id, stats,
                        rate_bps, update_period)
    rec = Recorder()
    db.senders[0].register_sender(1, rec)
    return sim, pacer, stats, rec


class TestCreditPacer:
    def test_paces_at_configured_rate(self):
        sim, pacer, stats, rec = make_pacer(rate_bps=500e6)
        pacer.start()
        sim.run(until=10 * MILLIS)
        pacer.stop()
        # 500 Mbps of 84B credits = ~744 credits/ms; jitter averages out.
        expected = 500e6 * 10e-3 / (84 * 8)
        assert expected * 0.8 < stats.credits_sent < expected * 1.2

    def test_credit_seqs_increase(self):
        sim, pacer, stats, rec = make_pacer()
        pacer.start()
        sim.run(until=1 * MILLIS)
        pacer.stop()
        seqs = [p.seq for p in rec.packets if p.kind == PacketKind.CREDIT]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_stop_halts_credits(self):
        sim, pacer, stats, rec = make_pacer()
        pacer.start()
        sim.run(until=1 * MILLIS)
        pacer.stop()
        count = stats.credits_sent
        sim.run(until=5 * MILLIS)
        assert stats.credits_sent == count
        assert sim.pending() == 0  # no leaked timers

    def test_start_is_idempotent(self):
        sim, pacer, stats, rec = make_pacer()
        pacer.start()
        pacer.start()
        sim.run(until=1 * MILLIS)
        pacer.stop()
        # one pacing loop, not two: rate honored
        expected = 500e6 * 1e-3 / (84 * 8)
        assert stats.credits_sent < expected * 1.3

    def test_rate_updates_take_effect(self):
        sim, pacer, stats, rec = make_pacer(rate_bps=500e6)
        pacer.start()
        sim.run(until=2 * MILLIS)
        at_full = stats.credits_sent
        pacer.feedback.rate_bps = 50e6  # force a 10x slowdown
        sim.run(until=4 * MILLIS)
        slow_period = stats.credits_sent - at_full
        pacer.stop()
        assert slow_period < at_full * 0.3

    def test_credits_carry_correct_addressing(self):
        sim, pacer, stats, rec = make_pacer()
        pacer.start()
        sim.run(until=200_000)
        pacer.stop()
        pkt = rec.packets[0]
        assert pkt.kind == PacketKind.CREDIT
        assert pkt.dscp == Dscp.CREDIT
        assert pkt.flow_id == 1
        assert pkt.size == 84

    def test_periodic_feedback_update_runs(self):
        sim, pacer, stats, rec = make_pacer(update_period=100_000)
        pacer.start()
        # pretend every credit came back: no loss -> rate should not drop
        sim.run(until=1 * MILLIS)
        for i in range(stats.credits_sent):
            pacer.note_data_received(i)
        before = pacer.feedback.rate_bps
        sim.run(until=2 * MILLIS)
        pacer.stop()
        assert pacer.feedback.updates >= 9
        assert pacer.feedback.rate_bps >= before * 0.5
