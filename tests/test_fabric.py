"""Durable sweep fabric: journal, stores, leases, retries, crash-resume.

The acceptance scenario (ISSUE 6): kill -9 a ≥32-cell sweep mid-flight,
resume it, and get (a) zero re-execution of completed cells and (b) a
merged result set byte-identical to an uninterrupted run; a sweep with
permanently failing cells must still terminate with a partial-completion
report naming them.
"""

import json
import multiprocessing
import os
import pickle
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.cache import ExperimentCache, config_key
from repro.experiments.config import ExperimentConfig, SchemeName
from repro.experiments.fabric import (
    DONE,
    EXHAUSTED,
    LEASED,
    PENDING,
    CompletionReport,
    FabricConfig,
    JournalError,
    SweepFabric,
    SweepJournal,
    append_line,
    sweep_status,
)
from repro.experiments.parallel import (
    FailedResult,
    retry_delay_s,
    run_many,
)
from repro.experiments.runner import ExperimentResult, SwitchCounters
from repro.experiments.store import SqliteStore, open_store
from repro.metrics.fct import FlowRecord
from repro.sim.units import MILLIS

SRC = str(Path(__file__).resolve().parent.parent / "src")


def tiny_config(**overrides):
    base = dict(scheme=SchemeName.DCTCP, sim_time_ns=1 * MILLIS, load=0.3,
                seed=1)
    base.update(overrides)
    return ExperimentConfig(**base)


def broken_config(**overrides):
    """A config that fails deterministically inside the worker."""
    return tiny_config(workload="no-such-workload", **overrides)


def synthetic_result(cfg, n_records=5, aborted=False):
    records = [
        FlowRecord(flow_id=i, scheme="dctcp", group="legacy", role="bg",
                   size_bytes=1000 + i, start_ns=i, fct_ns=10 * (i + 1),
                   timeouts=0, retransmissions=0)
        for i in range(n_records)
    ]
    return ExperimentResult(config=cfg, records=records,
                            counters=SwitchCounters(), events_run=99,
                            wall_seconds=0.01, aborted=aborted,
                            abort_reason="watchdog" if aborted else "")


# ----------------------------------------------------------------- stores


class TestSqliteStore:
    def test_roundtrip_and_miss(self, tmp_path):
        store = SqliteStore(tmp_path / "r.db")
        cfg = tiny_config()
        assert store.get(cfg) is None
        assert store.put(cfg, synthetic_result(cfg))
        loaded = store.get(cfg)
        assert loaded is not None
        assert loaded.records == synthetic_result(cfg).records
        assert loaded.events_run == 99
        assert store.get(cfg.with_(seed=2)) is None
        assert len(store) == 1

    def test_never_stores_failures_or_aborts(self, tmp_path):
        store = SqliteStore(tmp_path / "r.db")
        cfg = tiny_config()
        failed = FailedResult(config=cfg, error="boom", traceback="tb")
        assert not store.put(cfg, failed)
        assert not store.put(cfg, synthetic_result(cfg, aborted=True))
        assert store.skipped == 2
        assert store.get(cfg) is None

    def test_salt_partitions_keys(self, tmp_path):
        cfg = tiny_config()
        old = SqliteStore(tmp_path / "r.db", salt="code-v1")
        old.put(cfg, synthetic_result(cfg))
        assert old.get(cfg) is not None
        new = SqliteStore(tmp_path / "r.db", salt="code-v2")
        assert new.get(cfg) is None

    def test_torn_payload_reads_as_miss(self, tmp_path):
        store = SqliteStore(tmp_path / "r.db")
        cfg = tiny_config()
        store.put(cfg, synthetic_result(cfg))
        with sqlite3.connect(store.path) as conn:
            conn.execute("UPDATE results SET payload = ?",
                         (b"\x80garbage",))
        assert store.get(cfg) is None

    def test_missing_module_payload_reads_as_miss(self, tmp_path):
        """A payload pickled against a since-moved module is a stale-schema
        entry: it must read as a miss, not raise out of get()."""
        store = SqliteStore(tmp_path / "r.db")
        cfg = tiny_config()
        store.put(cfg, synthetic_result(cfg))
        # Protocol-0 GLOBAL opcode referencing a module that no longer
        # exists; unpickling raises ModuleNotFoundError.
        with sqlite3.connect(store.path) as conn:
            conn.execute("UPDATE results SET payload = ?",
                         (b"cno_such_module_xyz\nKlass\n.",))
        assert store.get(cfg) is None
        assert store.misses == 1

    def test_write_error_is_counted_not_raised(self, tmp_path, monkeypatch):
        store = SqliteStore(tmp_path / "r.db")
        cfg = tiny_config()

        def locked(key, payload):
            raise sqlite3.OperationalError("database is locked")

        monkeypatch.setattr(store, "_write", locked)
        assert store.put(cfg, synthetic_result(cfg)) is False
        assert store.write_errors == 1

    def test_open_store_spec_parsing(self, tmp_path):
        assert isinstance(open_store(str(tmp_path / "dir")), ExperimentCache)
        assert isinstance(open_store(f"sqlite:{tmp_path}/a.db"), SqliteStore)
        assert isinstance(open_store(str(tmp_path / "b.db")), SqliteStore)
        assert isinstance(open_store(str(tmp_path / "c.sqlite3")),
                          SqliteStore)
        store = SqliteStore(tmp_path / "d.db")
        assert open_store(store) is store

    def test_spec_reopens_equivalent_store(self, tmp_path):
        store = SqliteStore(tmp_path / "r.db")
        cfg = tiny_config()
        store.put(cfg, synthetic_result(cfg))
        again = open_store(store.spec)
        assert again.get(cfg) is not None


def _hammer(path, start, count, barrier):
    """Concurrent-writer worker: put `count` results, read some back."""
    store = SqliteStore(path)
    barrier.wait()  # maximize write overlap across processes
    for i in range(start, start + count):
        cfg = tiny_config(seed=i % 24 + 1)  # overlapping keys across procs
        ok = store.put(cfg, synthetic_result(cfg, n_records=20))
        assert ok, "concurrent write failed"
        got = store.get(cfg)
        assert got is not None and len(got.records) == 20
    store.close()


class TestSqliteConcurrentWriters:
    def test_multiprocess_hammer(self, tmp_path):
        """Four processes writing overlapping keys into one WAL database:
        every write lands, every read decodes, no corruption."""
        path = str(tmp_path / "shared.db")
        SqliteStore(path).close()  # create schema up front
        barrier = multiprocessing.Barrier(4)
        procs = [
            multiprocessing.Process(target=_hammer,
                                    args=(path, p * 24, 24, barrier))
            for p in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        store = SqliteStore(path)
        assert len(store) == 24  # seeds collapse onto 24 distinct configs
        for seed in range(1, 25):
            got = store.get(tiny_config(seed=seed))
            assert got is not None
            assert got.records == synthetic_result(
                tiny_config(seed=seed), n_records=20).records
        integrity = sqlite3.connect(path).execute(
            "PRAGMA integrity_check").fetchone()[0]
        assert integrity == "ok"


# ---------------------------------------------------------------- journal


class TestJournal:
    def test_create_then_replay_all_pending(self, tmp_path):
        journal = SweepJournal(tmp_path / "j")
        configs = [tiny_config(seed=s) for s in (1, 2)]
        sweep_id = journal.create(configs, "store-spec")
        assert journal.exists() and len(sweep_id) == 12
        states = journal.replay(2, lease_s=30)
        assert [s.status for s in states] == [PENDING, PENDING]
        grid = journal.load_grid()
        assert grid["store"] == "store-spec"
        assert grid["keys"] == [config_key(c, grid["salt"]) for c in configs]

    def test_create_twice_refuses(self, tmp_path):
        journal = SweepJournal(tmp_path / "j")
        journal.create([tiny_config()], "s")
        with pytest.raises(JournalError, match="already exists"):
            journal.create([tiny_config()], "s")

    def test_replay_state_machine(self, tmp_path):
        journal = SweepJournal(tmp_path / "j")
        journal.create([tiny_config(seed=s) for s in range(1, 5)], "s")
        t = time.time()
        for op in [
            {"op": "lease", "cell": 0, "attempt": 1, "deadline": t + 30},
            {"op": "lease", "cell": 1, "attempt": 1, "deadline": t + 30},
            {"op": "run", "cell": 1, "pid": 42, "attempt": 1, "t": t},
            {"op": "done", "cell": 1, "cached": False, "wall_s": 0.5},
            {"op": "lease", "cell": 2, "attempt": 1, "deadline": t + 30},
            {"op": "fail", "cell": 2, "attempt": 1, "error": "E",
             "tb": "TB", "pid": 7, "wall_s": 0.1},
            {"op": "requeue", "cell": 2, "attempt": 2},
            {"op": "lease", "cell": 3, "attempt": 3, "deadline": t + 30},
            {"op": "exhausted", "cell": 3, "attempts": 3},
        ]:
            journal.append(op)
        states = journal.replay(4, lease_s=30)
        assert states[0].status == LEASED
        assert states[1].status == DONE and states[1].executions == 1
        assert states[2].status == PENDING and states[2].attempts == 1
        assert states[2].error == "E" and states[2].worker_pid == 7
        assert states[3].status == EXHAUSTED and states[3].attempts == 3

    def test_torn_tail_line_is_skipped(self, tmp_path):
        journal = SweepJournal(tmp_path / "j")
        journal.create([tiny_config()], "s")
        journal.append({"op": "done", "cell": 0, "cached": False})
        with open(journal.journal_path, "ab") as fh:
            fh.write(b'{"op":"fail","cell":0,"err')  # crash mid-append
        states = journal.replay(1, lease_s=30)
        assert states[0].status == DONE

    def test_heartbeat_extends_lease(self, tmp_path):
        journal = SweepJournal(tmp_path / "j")
        journal.create([tiny_config()], "s")
        t = time.time()
        journal.append({"op": "lease", "cell": 0, "attempt": 1,
                        "deadline": t + 5, "t": t})
        journal.append({"op": "hb", "cell": 0, "pid": 1, "t": t + 100})
        states = journal.replay(1, lease_s=5)
        assert states[0].deadline == pytest.approx(t + 105)

    def test_replay_ignores_stale_zombie_verdicts(self, tmp_path):
        """An expired attempt's worker cannot be cancelled; its late
        `done`/`fail` lines (landing after `exhausted` or after the
        retry's verdict) must not rewrite the cell's state."""
        journal = SweepJournal(tmp_path / "j")
        journal.create([tiny_config(seed=s) for s in (1, 2)], "s")
        t = time.time()
        for op in [
            # cell 0: attempt 1 expires and the cell is exhausted; the
            # zombie's late `done` must not flip the verdict.
            {"op": "lease", "cell": 0, "attempt": 1, "deadline": t + 1},
            {"op": "expire", "cell": 0, "attempt": 1},
            {"op": "exhausted", "cell": 0, "attempts": 1},
            {"op": "done", "cell": 0, "attempt": 1, "cached": False},
            # cell 1: attempt 1 expires, attempt 2 succeeds; the zombie's
            # late `fail` must not resurrect the failure.
            {"op": "lease", "cell": 1, "attempt": 1, "deadline": t + 1},
            {"op": "expire", "cell": 1, "attempt": 1},
            {"op": "requeue", "cell": 1, "attempt": 2},
            {"op": "lease", "cell": 1, "attempt": 2, "deadline": t + 1},
            {"op": "done", "cell": 1, "attempt": 2, "cached": False},
            {"op": "fail", "cell": 1, "attempt": 1, "error": "zombie"},
        ]:
            journal.append(op)
        states = journal.replay(2, lease_s=30)
        assert states[0].status == EXHAUSTED
        assert states[0].stale_verdicts == 1
        assert states[1].status == DONE
        assert states[1].stale_verdicts == 1

    def test_verify_grid_catches_keying_drift(self, tmp_path):
        journal = SweepJournal(tmp_path / "j")
        journal.create([tiny_config()], "s")
        grid = journal.load_grid()
        grid["keys"] = ["0" * 64]
        with pytest.raises(JournalError, match="no longer match"):
            journal.verify_grid(grid)

    def test_append_line_is_one_json_line(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_line(path, {"op": "hb", "cell": 1})
        append_line(path, {"op": "hb", "cell": 2}, sync=True)
        lines = path.read_text().splitlines()
        assert [json.loads(ln)["cell"] for ln in lines] == [1, 2]


# ----------------------------------------------------- retries & backoff


class TestRetryPolicy:
    def test_delay_is_deterministic_and_exponential(self):
        d1 = retry_delay_s(1, 0.5, seed=3, token="k")
        d2 = retry_delay_s(2, 0.5, seed=3, token="k")
        d3 = retry_delay_s(3, 0.5, seed=3, token="k")
        assert d1 == retry_delay_s(1, 0.5, seed=3, token="k")
        assert 0.5 <= d1 <= 0.75       # base * [1, 1.5)
        assert 1.0 <= d2 <= 1.5
        assert 2.0 <= d3 <= 3.0
        assert retry_delay_s(1, 0.5, seed=4, token="k") != d1
        assert retry_delay_s(1, 0.0, seed=3, token="k") == 0.0

    def test_run_many_max_retries_records_attempts(self):
        results = run_many([broken_config()], processes=1, max_retries=2)
        (res,) = results
        assert isinstance(res, FailedResult)
        assert res.attempts == 3           # 1 initial + 2 retries
        assert res.retried
        assert res.worker_pid == os.getpid()
        assert res.wall_seconds >= 0.0
        assert "no-such-workload" in res.error

    def test_run_many_retry_failed_compat(self):
        (res,) = run_many([broken_config()], processes=1, retry_failed=True)
        assert isinstance(res, FailedResult)
        assert res.attempts == 2 and res.retried

    def test_run_many_backoff_sleeps_seeded(self, monkeypatch):
        import repro.experiments.parallel as parallel_mod

        napped = []
        monkeypatch.setattr(parallel_mod.time, "sleep", napped.append)
        run_many([broken_config()], processes=1, max_retries=2,
                 retry_base_s=0.25, retry_seed=11)
        assert napped == [retry_delay_s(1, 0.25, 11, 0),
                          retry_delay_s(2, 0.25, 11, 0)]

    def test_failed_result_stamps_pid_and_duration(self):
        (res,) = run_many([broken_config()], processes=1)
        assert isinstance(res, FailedResult)
        assert res.worker_pid == os.getpid()  # serial path runs in-process
        assert res.wall_seconds >= 0.0
        assert res.attempts == 1 and not res.retried


# ------------------------------------------------------------ the fabric


def _stalled_cell(item):
    """Pool-task stand-in for a wedged worker: no journal lines, no exit."""
    time.sleep(600)


class TestFabric:
    def fabric(self, tmp_path, **overrides):
        kw = dict(processes=1, max_retries=1, retry_base_s=0.0,
                  heartbeat_s=0.2)
        kw.update(overrides)
        return SweepFabric(tmp_path / "journal",
                           store=f"sqlite:{tmp_path}/results.db",
                           config=FabricConfig(**kw))

    def test_start_complete_and_report(self, tmp_path):
        configs = [tiny_config(seed=s) for s in (1, 2, 3)]
        fabric = self.fabric(tmp_path)
        results = fabric.run(configs)
        assert [r.config.seed for r in results] == [1, 2, 3]
        assert not any(isinstance(r, FailedResult) for r in results)
        report = fabric.last_report
        assert report.status == "complete"
        assert report.total == 3 and report.completed == 3
        assert report.executed == 3 and report.failed == []
        on_disk = json.loads(
            (tmp_path / "journal" / "report.json").read_text())
        assert on_disk["sweep_id"] == report.sweep_id
        assert on_disk["status"] == "complete"

    def test_progress_reaches_total(self, tmp_path):
        calls = []
        fabric = self.fabric(tmp_path)
        fabric.run([tiny_config(seed=s) for s in (1, 2)],
                   progress=lambda d, t: calls.append((d, t)))
        assert calls[-1] == (2, 2)

    def test_resume_recomputes_nothing(self, tmp_path):
        configs = [tiny_config(seed=s) for s in (1, 2, 3)]
        first = self.fabric(tmp_path)
        res1 = first.run(configs)
        resumed = SweepFabric(tmp_path / "journal",
                              config=FabricConfig(processes=1))
        res2 = resumed.run()
        assert resumed.last_report.executed == 0
        assert resumed.last_report.store_hits == 3
        for a, b in zip(res1, res2):
            assert a.records == b.records
            assert pickle.dumps(a.fct()) == pickle.dumps(b.fct())

    def test_duplicate_configs_simulate_once(self, tmp_path):
        cfg = tiny_config(seed=5)
        fabric = self.fabric(tmp_path)
        results = fabric.run([cfg, tiny_config(seed=6), cfg])
        assert fabric.last_report.executed == 2
        assert results[0].records == results[2].records

    def test_partial_completion_lists_failed_cells(self, tmp_path):
        configs = [tiny_config(seed=1), broken_config(seed=2),
                   tiny_config(seed=3)]
        fabric = self.fabric(tmp_path, max_retries=1)
        results = fabric.run(configs)
        report = fabric.last_report
        assert report.status == "partial"
        assert report.completed == 2
        assert isinstance(results[1], FailedResult)
        assert results[1].attempts == 2
        assert results[1].worker_pid > 0
        (failed,) = report.failed
        assert failed["index"] == 1 and failed["attempts"] == 2
        assert "no-such-workload" in failed["error"]
        # Resume must keep the exhausted verdict without re-running it.
        resumed = SweepFabric(tmp_path / "journal")
        res2 = resumed.run()
        assert resumed.last_report.executed == 0
        assert isinstance(res2[1], FailedResult)
        assert res2[1].attempts == 2
        assert "no-such-workload" in res2[1].error

    def test_store_loss_requeues_done_cells(self, tmp_path):
        configs = [tiny_config(seed=s) for s in (1, 2)]
        fabric = self.fabric(tmp_path)
        first = fabric.run(configs)
        os.unlink(tmp_path / "results.db")
        resumed = SweepFabric(tmp_path / "journal",
                              config=FabricConfig(processes=1))
        res2 = resumed.run()
        assert resumed.last_report.executed == 2
        for a, b in zip(first, res2):
            assert a.records == b.records

    def test_mismatched_grid_raises(self, tmp_path):
        fabric = self.fabric(tmp_path)
        fabric.run([tiny_config(seed=1)])
        with pytest.raises(JournalError, match="do not match"):
            SweepFabric(tmp_path / "journal").run([tiny_config(seed=99)])

    def test_resume_without_journal_raises(self, tmp_path):
        with pytest.raises(JournalError, match="no sweep to resume"):
            SweepFabric(tmp_path / "nope").run()

    def test_run_many_coordinator_delegation(self, tmp_path):
        configs = [tiny_config(seed=s) for s in (1, 2)]
        fabric = self.fabric(tmp_path)
        results = run_many(configs, coordinator=fabric)
        assert len(results) == 2
        assert fabric.last_report is not None
        assert fabric.last_report.status == "complete"

    def test_directory_store_backend(self, tmp_path):
        fabric = SweepFabric(tmp_path / "journal",
                             store=str(tmp_path / "dirstore"),
                             config=FabricConfig(processes=1))
        results = fabric.run([tiny_config(seed=1)])
        assert not isinstance(results[0], FailedResult)
        assert any((tmp_path / "dirstore").rglob("*.pkl"))

    def test_sweep_status_reflects_journal(self, tmp_path):
        configs = [tiny_config(seed=1), broken_config(seed=2)]
        fabric = self.fabric(tmp_path, max_retries=0)
        fabric.run(configs)
        status = sweep_status(tmp_path / "journal")
        assert status["cells"] == 2
        assert status["by_status"] == {DONE: 1, EXHAUSTED: 1}
        assert status["exhausted"][0]["index"] == 1
        assert status["last_report"]["status"] == "partial"

    def test_pool_path_matches_serial(self, tmp_path):
        configs = [tiny_config(seed=s) for s in (1, 2, 3, 4)]
        serial = self.fabric(tmp_path).run(configs)
        pooled_fabric = SweepFabric(
            tmp_path / "journal2", store=f"sqlite:{tmp_path}/r2.db",
            config=FabricConfig(processes=2, heartbeat_s=0.2))
        pooled = pooled_fabric.run(configs)
        assert pooled_fabric.last_report.status == "complete"
        for a, b in zip(serial, pooled):
            assert a.records == b.records
            assert pickle.dumps(a.fct()) == pickle.dumps(b.fct())

    def test_pool_dispatch_capped_at_pool_size(self, tmp_path):
        """Leases are only taken when a worker slot is free. Dispatching
        the whole backlog at once would start every lease at submit time,
        so any cell whose pool-queue wait exceeded lease_s was falsely
        expired without ever running."""
        configs = [tiny_config(seed=s) for s in range(1, 7)]
        fabric = SweepFabric(
            tmp_path / "journal", store=f"sqlite:{tmp_path}/r.db",
            config=FabricConfig(processes=2, heartbeat_s=0.2))
        fabric.run(configs)
        report = fabric.last_report
        assert report.status == "complete"
        assert report.expired_leases == 0
        assert report.duplicate_executions == 0
        # Replay lease/verdict ordering from the journal: in-flight
        # cells (leased, no verdict yet) never exceed the pool size.
        inflight = 0
        max_inflight = 0
        journal_path = tmp_path / "journal" / "journal.jsonl"
        for line in journal_path.read_bytes().splitlines():
            op = json.loads(line)
            if op.get("op") == "lease":
                inflight += 1
                max_inflight = max(max_inflight, inflight)
            elif op.get("op") in ("done", "fail", "expire"):
                inflight -= 1
        assert max_inflight <= 2

    def test_resume_serves_exhausted_cell_from_store(self, tmp_path):
        """A cell written off as exhausted whose zombie attempt later
        stored a valid result is served from the store on resume instead
        of re-reporting the self-healed failure."""
        configs = [tiny_config(seed=1), broken_config(seed=2)]
        fabric = self.fabric(tmp_path, max_retries=0)
        results = fabric.run(configs)
        assert isinstance(results[1], FailedResult)
        grid = SweepJournal(tmp_path / "journal").load_grid()
        store = open_store(grid["store"], salt=grid["salt"])
        store.put(configs[1], synthetic_result(configs[1]))
        store.close()
        resumed = SweepFabric(tmp_path / "journal",
                              config=FabricConfig(processes=1))
        res2 = resumed.run()
        assert not isinstance(res2[1], FailedResult)
        report = resumed.last_report
        assert report.status == "complete"
        assert report.executed == 0
        assert report.store_hits == 2
        # The salvage is journaled: a further resume sees both cells DONE.
        status = sweep_status(tmp_path / "journal")
        assert status["by_status"] == {DONE: 2}

    def test_lease_expiry_requeues_and_terminates(self, tmp_path,
                                                  monkeypatch):
        """A stalled worker (sleeps forever, no heartbeat) is expired at
        its lease deadline; the retry stalls too, so the sweep terminates
        with an exhausted cell instead of hanging. The pool-task patch
        reaches the workers because Linux pools fork."""
        import repro.experiments.fabric as fabric_mod

        monkeypatch.setattr(fabric_mod, "_fabric_cell", _stalled_cell)
        # Two cells: a single pending cell clamps the pool to one process
        # and takes the serial path, which has no leases to expire.
        configs = [tiny_config(seed=1), tiny_config(seed=2)]
        fabric = SweepFabric(
            tmp_path / "journal", store=f"sqlite:{tmp_path}/r.db",
            config=FabricConfig(processes=2, max_retries=1, lease_s=0.2,
                                retry_base_s=0.0, heartbeat_s=30.0,
                                poll_s=0.01))
        results = fabric.run(configs)
        report = fabric.last_report
        assert report.expired_leases == 4  # 2 cells x (initial + 1 retry)
        assert report.retries == 2
        for res in results:
            assert isinstance(res, FailedResult)
            assert "lease expired" in res.error
            assert res.attempts == 2
        assert report.status == "partial"


# ------------------------------------------------- kill -9 crash-resume


def _journal_cell_counts(journal_path):
    """(runs, dones) per cell from raw journal bytes."""
    runs, dones = {}, {}
    for line in Path(journal_path).read_bytes().splitlines():
        try:
            op = json.loads(line)
        except ValueError:
            continue
        if op.get("op") == "run":
            runs[op["cell"]] = runs.get(op["cell"], 0) + 1
        elif op.get("op") == "done":
            dones[op["cell"]] = dones.get(op["cell"], 0) + 1
    return runs, dones


DRIVER = """
import sys
sys.path.insert(0, {src!r})
from repro.experiments.config import ExperimentConfig, SchemeName
from repro.experiments.fabric import SweepFabric, FabricConfig
from repro.sim.units import MILLIS

configs = [
    ExperimentConfig(scheme=SchemeName.DCTCP, sim_time_ns=2 * MILLIS,
                     load=load, seed=seed)
    for seed in range(1, 17) for load in (0.3, 0.5)
]
assert len(configs) == 32
fabric = SweepFabric({journal!r}, store={store!r},
                     config=FabricConfig(processes=2, heartbeat_s=0.2))
fabric.run(configs)
"""


@pytest.mark.slow
class TestCrashResume:
    """The ISSUE 6 acceptance scenario, end to end."""

    def _configs(self):
        return [
            ExperimentConfig(scheme=SchemeName.DCTCP, sim_time_ns=2 * MILLIS,
                             load=load, seed=seed)
            for seed in range(1, 17) for load in (0.3, 0.5)
        ]

    def test_kill9_resume_no_recompute_byte_identical(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        store_spec = f"sqlite:{tmp_path}/results.db"
        driver = DRIVER.format(src=SRC, journal=journal_dir,
                               store=store_spec)
        # Run the sweep in its own process group so SIGKILL takes the
        # pool workers down with the coordinator — a true host death.
        proc = subprocess.Popen([sys.executable, "-c", driver],
                                start_new_session=True,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        journal_path = Path(journal_dir) / "journal.jsonl"
        deadline = time.time() + 120
        try:
            # Wait until the sweep is genuinely mid-flight: some cells
            # done, the rest pending or leased.
            while time.time() < deadline:
                if proc.poll() is not None:
                    break
                if journal_path.exists():
                    _, dones = _journal_cell_counts(journal_path)
                    if len(dones) >= 4:
                        break
                time.sleep(0.02)
            assert journal_path.exists(), "sweep never started"
        finally:
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        runs_before, dones_before = _journal_cell_counts(journal_path)
        assert dones_before, "nothing completed before the kill"
        interrupted_mid_flight = len(dones_before) < 32

        # Resume in this process and drive the sweep to completion.
        fabric = SweepFabric(journal_dir,
                             config=FabricConfig(processes=2,
                                                 heartbeat_s=0.2))
        results = fabric.run()
        report = fabric.last_report
        assert report.status == "complete"
        assert report.total == 32 and report.completed == 32
        assert not any(isinstance(r, FailedResult) for r in results)

        # (a) zero re-execution of completed cells: a cell that reached
        # `done` before the kill never gains another `run` line.
        runs_after, dones_after = _journal_cell_counts(journal_path)
        assert set(dones_after) == set(range(32))
        for cell in dones_before:
            assert runs_after.get(cell, 0) == runs_before.get(cell, 0), (
                f"cell {cell} was re-executed after resume")
        if interrupted_mid_flight:
            assert report.executed > 0  # the kill left real work behind

        # (b) byte-identical merge vs an uninterrupted run of the same
        # grid into a fresh journal + store.
        clean = SweepFabric(tmp_path / "journal-clean",
                            store=f"sqlite:{tmp_path}/clean.db",
                            config=FabricConfig(processes=2,
                                                heartbeat_s=0.2))
        expected = clean.run(self._configs())
        assert clean.last_report.status == "complete"
        for got, want in zip(results, expected):
            assert pickle.dumps(got.records) == pickle.dumps(want.records)
            assert pickle.dumps(got.fct()) == pickle.dumps(want.fct())
            assert pickle.dumps(got.fct(small=True)) == \
                pickle.dumps(want.fct(small=True))


# ----------------------------------------------------------- report API


class TestCompletionReport:
    def test_write_and_roundtrip(self, tmp_path):
        report = CompletionReport(
            sweep_id="abc", status="partial", total=3, completed=2,
            failed=[{"index": 1, "key": "k", "error": "E", "attempts": 2,
                     "worker_pid": 9, "wall_seconds": 0.5}],
            executed=4, store_hits=1, retries=1, expired_leases=0,
            wall_seconds=1.5, store="sqlite:x.db",
            store_stats={"stores": 2})
        path = tmp_path / "report.json"
        report.write(path)
        loaded = json.loads(path.read_text())
        assert loaded == report.to_dict()
        assert loaded["failed"][0]["index"] == 1
