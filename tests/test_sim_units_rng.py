"""Unit tests for unit conversions and deterministic RNG streams."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.rng import RngRegistry
from repro.sim.units import (
    GBPS,
    MBPS,
    SECONDS,
    bits_to_bytes,
    bytes_to_bits,
    rate_to_bytes_per_ns,
    tx_time_ns,
)


class TestTxTime:
    def test_known_value(self):
        # 1250 bytes at 10 Gbps = 10000 bits / 10 bits-per-ns = 1000 ns
        assert tx_time_ns(1250, 10 * GBPS) == 1000

    def test_rounds_up(self):
        # 1 byte at 10 Gbps = 0.8 ns -> 1 ns
        assert tx_time_ns(1, 10 * GBPS) == 1

    def test_zero_bytes_is_zero(self):
        assert tx_time_ns(0, GBPS) == 0

    def test_nonpositive_rate_raises(self):
        with pytest.raises(ValueError):
            tx_time_ns(100, 0)

    @given(st.integers(1, 1 << 20), st.integers(1, 400 * GBPS))
    def test_property_never_early(self, nbytes, rate):
        t = tx_time_ns(nbytes, rate)
        # The wire must have carried at least nbytes*8 bits by time t.
        assert t * rate >= nbytes * 8 * SECONDS - rate  # within one ns quantum
        assert (t - 1) * rate < nbytes * 8 * SECONDS


def test_bits_bytes_roundtrip():
    assert bytes_to_bits(100) == 800
    assert bits_to_bytes(800) == 100
    assert bits_to_bytes(801) == 101  # rounds up


def test_rate_to_bytes_per_ns():
    assert rate_to_bytes_per_ns(8 * GBPS) == pytest.approx(1.0)
    assert rate_to_bytes_per_ns(80 * MBPS) == pytest.approx(0.01)


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        a = RngRegistry(seed=42).stream("flows")
        b = RngRegistry(seed=42).stream("flows")
        assert list(a.integers(0, 1 << 30, 10)) == list(b.integers(0, 1 << 30, 10))

    def test_different_names_are_independent(self):
        reg = RngRegistry(seed=42)
        a = list(reg.stream("flows").integers(0, 1 << 30, 10))
        b = list(reg.stream("sizes").integers(0, 1 << 30, 10))
        assert a != b

    def test_stream_is_cached(self):
        reg = RngRegistry(seed=1)
        assert reg.stream("x") is reg.stream("x")

    def test_adding_streams_does_not_perturb_existing(self):
        reg1 = RngRegistry(seed=7)
        first = list(reg1.stream("a").integers(0, 100, 5))
        reg2 = RngRegistry(seed=7)
        reg2.stream("zzz")  # extra stream created first
        second = list(reg2.stream("a").integers(0, 100, 5))
        assert first == second

    def test_fork_changes_streams(self):
        reg = RngRegistry(seed=7)
        forked = reg.fork(1)
        a = list(reg.stream("a").integers(0, 1 << 30, 5))
        b = list(forked.stream("a").integers(0, 1 << 30, 5))
        assert a != b

    def test_fork_is_deterministic(self):
        a = RngRegistry(seed=7).fork(3).stream("x")
        b = RngRegistry(seed=7).fork(3).stream("x")
        assert list(a.integers(0, 1 << 30, 5)) == list(b.integers(0, 1 << 30, 5))

    def test_fork_no_linear_collision(self):
        """Regression: the old ``seed * P + salt`` derivation collided for
        (seed=7, salt=P) and (seed=8, salt=0) — both landed on 8*P — so two
        unrelated fault scenarios shared every random stream."""
        a = RngRegistry(seed=7).fork(1_000_003)
        b = RngRegistry(seed=8).fork(0)
        sa = list(a.stream("faults").integers(0, 1 << 30, 8))
        sb = list(b.stream("faults").integers(0, 1 << 30, 8))
        assert sa != sb

    def test_fork_salt_zero_differs_from_parent(self):
        reg = RngRegistry(seed=11)
        forked = reg.fork(0)
        a = list(reg.stream("a").integers(0, 1 << 30, 8))
        b = list(forked.stream("a").integers(0, 1 << 30, 8))
        assert a != b

    def test_chained_forks_do_not_cycle(self):
        """fork(k).fork(k) must not reproduce an earlier registry's
        streams; the SeedSequence derivation keeps the chain aperiodic."""
        root = RngRegistry(seed=5)
        seen = set()
        reg = root
        for _ in range(6):
            reg = reg.fork(1)
            draw = tuple(reg.stream("s").integers(0, 1 << 30, 4))
            assert draw not in seen
            seen.add(draw)
