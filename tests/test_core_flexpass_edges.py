"""Edge-path tests for FlexPass endpoints: summary ACKs, tiny flows,
competing receivers, and sub-flow accounting consistency."""

import pytest

from repro.core.flexpass import (
    PROACTIVE,
    REACTIVE,
    FlexPassParams,
    FlexPassReceiver,
    FlexPassSender,
)
from repro.experiments.config import QueueSettings
from repro.experiments.scenarios import flexpass_queue_factory
from repro.net.packet import Packet, PacketKind
from repro.net.topology import DumbbellSpec, StarSpec, build_dumbbell, build_star
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, KB, MB, MILLIS
from repro.transports.base import FlowSpec, FlowStats
from repro.transports.credit_feedback import CREDIT_PER_DATA

from tests.util import Completions


def params(**kw):
    return FlexPassParams(
        max_credit_rate_bps=10 * GBPS * 0.5 * CREDIT_PER_DATA, **kw
    )


def launch(sim, spec, done=None, p=None):
    p = p or params()
    stats = FlowStats()
    receiver = FlexPassReceiver(sim, spec, stats, p, on_complete=done)
    sender = FlexPassSender(sim, spec, stats, p)
    sim.at(spec.start_ns, sender.start)
    return stats, sender, receiver


class TestTinyFlows:
    def test_single_byte_flow(self):
        sim = Simulator()
        db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings()),
                            DumbbellSpec(n_pairs=1))
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 1, 0,
                        scheme="flexpass", group="new")
        stats, sender, _ = launch(sim, spec, done)
        sim.run(until=20 * MILLIS)
        assert done.flow_ids == {1}
        assert stats.delivered_bytes == 1
        assert sender.all_acked

    def test_exactly_one_mss(self):
        sim = Simulator()
        db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings()),
                            DumbbellSpec(n_pairs=1))
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 1500, 0,
                        scheme="flexpass", group="new")
        stats, _, _ = launch(sim, spec, done)
        sim.run(until=20 * MILLIS)
        assert stats.delivered_bytes == 1500
        assert spec.n_segments == 1

    @pytest.mark.parametrize("size", [1499, 1500, 1501, 2999, 3000, 3001])
    def test_segment_boundary_sizes(self, size):
        sim = Simulator()
        db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings()),
                            DumbbellSpec(n_pairs=1))
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], size, 0,
                        scheme="flexpass", group="new")
        stats, _, _ = launch(sim, spec, done)
        sim.run(until=20 * MILLIS)
        assert stats.delivered_bytes == size


class TestSummaryAcks:
    def test_completed_receiver_answers_stuck_sender(self):
        """A CREDIT_REQUEST arriving after completion must trigger summary
        ACKs so a sender stuck on dropped ACKs converges."""
        sim = Simulator()
        db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings()),
                            DumbbellSpec(n_pairs=1))
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 50 * KB, 0,
                        scheme="flexpass", group="new")
        stats, sender, receiver = launch(sim, spec, done)
        sim.run(until=20 * MILLIS)
        assert stats.completed

        # Simulate a stuck sender re-requesting credits post-completion.
        acks = []
        sender_host = db.senders[0]
        sender_host.register_sender(1, type("T", (), {
            "on_packet": staticmethod(lambda pkt: acks.append(pkt))
        })())
        req = Packet(PacketKind.CREDIT_REQUEST, 1, spec.src.id, spec.dst.id,
                     84, dscp=3, meta=spec.size_bytes)
        spec.src.send(req)
        sim.run(until=25 * MILLIS)
        kinds = [(p.kind, p.subflow) for p in acks]
        assert (PacketKind.ACK, PROACTIVE) in kinds
        assert (PacketKind.ACK, REACTIVE) in kinds
        # and crucially: no new credits (the pacer stays stopped)
        assert all(p.kind != PacketKind.CREDIT for p in acks)


class TestAccountingConsistency:
    def test_subflow_bytes_partition_delivery(self):
        sim = Simulator()
        db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings()),
                            DumbbellSpec(n_pairs=1))
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 3 * MB, 0,
                        scheme="flexpass", group="new")
        stats, _, _ = launch(sim, spec, done)
        sim.run(until=60 * MILLIS)
        assert stats.proactive_bytes + stats.reactive_bytes == \
            stats.delivered_bytes == 3 * MB

    def test_many_small_flows_to_one_receiver(self):
        """Concurrent flows at one receiver each get their own credit loop;
        all complete; host demux never crosses wires."""
        sim = Simulator()
        star = build_star(sim, flexpass_queue_factory(QueueSettings()),
                          StarSpec(n_hosts=5))
        done = Completions()
        receiver = star.hosts[0]
        stats_by_size = {}
        fid = 0
        for i, src in enumerate(star.hosts[1:]):
            for k in range(3):
                fid += 1
                size = 10 * KB + fid * 1000  # unique sizes
                spec = FlowSpec(fid, src, receiver, size, 0,
                                scheme="flexpass", group="new")
                stats_by_size[fid] = (size, launch(sim, spec, done)[0])
        sim.run(until=100 * MILLIS)
        assert len(done.flow_ids) == fid
        for size, stats in stats_by_size.values():
            assert stats.delivered_bytes == size

    def test_staggered_starts(self):
        sim = Simulator()
        db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings()),
                            DumbbellSpec(n_pairs=2))
        done = Completions()
        specs = []
        for fid in range(1, 5):
            spec = FlowSpec(fid, db.senders[fid % 2], db.receivers[fid % 2],
                            200 * KB, fid * 2 * MILLIS,
                            scheme="flexpass", group="new")
            launch(sim, spec, done)
            specs.append(spec)
        sim.run(until=100 * MILLIS)
        assert done.flow_ids == {1, 2, 3, 4}
        # FCT measured from each flow's own start
        for spec, (s, st) in zip(specs, done.records):
            assert st.start_ns == spec.start_ns
