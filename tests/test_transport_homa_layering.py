"""End-to-end tests for the simplified Homa and the Layering (LY) scheme."""

from repro.experiments.config import QueueSettings
from repro.experiments.scenarios import homa_queue_factory, naive_queue_factory
from repro.net.topology import DumbbellSpec, build_dumbbell
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, KB, MB, MILLIS
from repro.transports.base import FlowSpec, FlowStats
from repro.transports.credit_feedback import CREDIT_PER_DATA
from repro.transports.dctcp import DctcpParams, DctcpReceiver, DctcpSender
from repro.transports.homa import HomaParams, HomaReceiver, HomaSender
from repro.transports.layering import LayeringParams, LayeringReceiver, LayeringSender

from tests.util import Completions


def launch_homa(sim, spec, done, params=None):
    params = params or HomaParams()
    stats = FlowStats()
    HomaReceiver(sim, spec, stats, params, on_complete=done)
    sender = HomaSender(sim, spec, stats, params)
    sim.at(spec.start_ns, sender.start)
    return stats


def launch_ly(sim, spec, done):
    params = LayeringParams(max_credit_rate_bps=10 * GBPS * CREDIT_PER_DATA)
    stats = FlowStats()
    LayeringReceiver(sim, spec, stats, params, on_complete=done)
    sender = LayeringSender(sim, spec, stats, params)
    sim.at(spec.start_ns, sender.start)
    return stats


def launch_dctcp(sim, spec, done):
    params = DctcpParams()
    stats = FlowStats()
    DctcpReceiver(sim, spec, stats, params, on_complete=done)
    sender = DctcpSender(sim, spec, stats, params)
    sim.at(spec.start_ns, sender.start)
    return stats


class TestHoma:
    def test_short_flow_completes_unscheduled(self):
        """A flow within RTT-bytes needs no grants at all."""
        sim = Simulator()
        db = build_dumbbell(sim, homa_queue_factory(), DumbbellSpec(n_pairs=1))
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 30 * KB, 0, scheme="homa")
        stats = launch_homa(sim, spec, done)
        sim.run(until=20 * MILLIS)
        assert done.flow_ids == {1}
        assert stats.credits_sent == 0  # no grants issued
        assert done.fct_ms(1) < 0.2

    def test_long_flow_uses_grants(self):
        sim = Simulator()
        db = build_dumbbell(sim, homa_queue_factory(), DumbbellSpec(n_pairs=1))
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 2 * MB, 0, scheme="homa")
        stats = launch_homa(sim, spec, done)
        sim.run(until=40 * MILLIS)
        assert done.flow_ids == {1}
        assert stats.credits_sent > 0
        assert stats.delivered_bytes == 2 * MB

    def _run_contest(self, factory, homa_params, ms=25):
        sim = Simulator()
        db = build_dumbbell(sim, factory, DumbbellSpec(n_pairs=2))
        done = Completions()
        homa_stats, dctcp_stats = [], []
        fid = 0
        for i in range(16):
            fid += 1
            homa_stats.append(launch_homa(
                sim, FlowSpec(fid, db.senders[0], db.receivers[0], 8 * MB, 0,
                              scheme="homa"), done, params=homa_params))
            fid += 1
            dctcp_stats.append(launch_dctcp(
                sim, FlowSpec(fid, db.senders[1], db.receivers[1], 8 * MB, 0,
                              scheme="dctcp"), done))
        sim.run(until=ms * MILLIS)
        return (sum(s.delivered_bytes for s in homa_stats),
                sum(s.delivered_bytes for s in dctcp_stats))

    def test_many_homa_flows_starve_dctcp_without_isolation(self):
        """Figure 1(b): with no coexistence measures (shared data queue),
        Homa's blind full-rate granting starves DCTCP."""
        from repro.experiments.scenarios import homa_shared_queue_factory

        params = HomaParams(grant_prio=0, unscheduled_prio=1, scheduled_prio=1)
        homa_bytes, dctcp_bytes = self._run_contest(
            homa_shared_queue_factory(), params)
        assert homa_bytes > 4 * dctcp_bytes

    def test_strict_priority_protects_dctcp(self):
        """Documented model deviation (DESIGN.md): when DCTCP really sits
        alone in a strictly-higher-priority queue, a work-conserving
        per-packet scheduler protects it — the inversion the paper reports
        requires its switch's buffer-exhaustion dynamics."""
        homa_bytes, dctcp_bytes = self._run_contest(
            homa_queue_factory(), HomaParams())
        assert dctcp_bytes > homa_bytes


class TestLayering:
    def test_flow_completes(self):
        sim = Simulator()
        db = build_dumbbell(sim, naive_queue_factory(QueueSettings()),
                            DumbbellSpec(n_pairs=1))
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 2 * MB, 0, scheme="ly")
        stats = launch_ly(sim, spec, done)
        sim.run(until=60 * MILLIS)
        assert done.flow_ids == {1}
        assert stats.delivered_bytes == 2 * MB

    def test_window_gate_wastes_credits(self):
        """The LY failure mode (§6.2): credits arriving while the DCTCP
        window is closed are discarded — wasted capacity even when alone."""
        sim = Simulator()
        db = build_dumbbell(sim, naive_queue_factory(QueueSettings()),
                            DumbbellSpec(n_pairs=1))
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 4 * MB, 0, scheme="ly")
        stats = launch_ly(sim, spec, done)
        sim.run(until=60 * MILLIS)
        assert stats.credits_wasted > 0

    def test_does_not_starve_dctcp(self):
        """Unlike naïve ExpressPass, LY's window reacts to legacy ECN marks
        and shares the link."""
        sim = Simulator()
        db = build_dumbbell(sim, naive_queue_factory(QueueSettings()),
                            DumbbellSpec(n_pairs=2))
        done = Completions()
        size = 40 * MB
        ly = launch_ly(sim, FlowSpec(1, db.senders[0], db.receivers[0], size, 0,
                                     scheme="ly"), done)
        dc = launch_dctcp(sim, FlowSpec(2, db.senders[1], db.receivers[1], size,
                                        0, scheme="dctcp"), done)
        sim.run(until=30 * MILLIS)
        total = ly.delivered_bytes + dc.delivered_bytes
        assert dc.delivered_bytes / total > 0.25  # no starvation
