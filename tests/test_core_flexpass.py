"""End-to-end tests for FlexPass: the testbed behaviours of §6.1."""

import pytest

from repro.core.flexpass import FlexPassParams, FlexPassReceiver, FlexPassSender
from repro.experiments.config import ExperimentConfig, QueueSettings, SchemeName
from repro.experiments.scenarios import flexpass_queue_factory
from repro.net.topology import DumbbellSpec, StarSpec, build_dumbbell, build_star
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, KB, MB, MILLIS
from repro.transports.base import FlowSpec, FlowStats
from repro.transports.credit_feedback import CREDIT_PER_DATA
from repro.transports.dctcp import DctcpParams, DctcpReceiver, DctcpSender

from tests.util import Completions


def fp_params(rate_bps=10 * GBPS, wq=0.5, **kw):
    return FlexPassParams(
        max_credit_rate_bps=rate_bps * wq * CREDIT_PER_DATA, **kw
    )


def launch_fp(sim, spec, done, params=None):
    params = params or fp_params()
    stats = FlowStats()
    FlexPassReceiver(sim, spec, stats, params, on_complete=done)
    sender = FlexPassSender(sim, spec, stats, params)
    sim.at(spec.start_ns, sender.start)
    return stats


def launch_dctcp(sim, spec, done):
    stats = FlowStats()
    params = DctcpParams()
    DctcpReceiver(sim, spec, stats, params, on_complete=done)
    sender = DctcpSender(sim, spec, stats, params)
    sim.at(spec.start_ns, sender.start)
    return stats


def fp_factory(wq=0.5):
    return flexpass_queue_factory(QueueSettings(wq=wq))


class TestSingleFlexPassFlow:
    def test_completes_and_delivers_every_byte_once(self):
        sim = Simulator()
        db = build_dumbbell(sim, fp_factory(), DumbbellSpec(n_pairs=1))
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 2 * MB, 0,
                        scheme="flexpass", group="new")
        stats = launch_fp(sim, spec, done)
        sim.run(until=60 * MILLIS)
        assert done.flow_ids == {1}
        assert stats.delivered_bytes == 2 * MB
        assert stats.proactive_bytes + stats.reactive_bytes == 2 * MB

    def test_lone_flow_fills_link_with_both_subflows(self):
        """Figure 7(a): proactive takes w_q of the link, reactive the rest,
        together ~line rate."""
        sim = Simulator()
        db = build_dumbbell(sim, fp_factory(0.5), DumbbellSpec(n_pairs=1))
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 8 * MB, 0,
                        scheme="flexpass", group="new")
        stats = launch_fp(sim, spec, done)
        sim.run(until=60 * MILLIS)
        assert done.flow_ids == {1}
        # 8 MB at ~9.5G -> ~6.9ms; require clearly better than wq-only (13.5ms)
        assert done.fct_ms(1) < 10.0
        assert stats.proactive_bytes > 1 * MB
        assert stats.reactive_bytes > 1 * MB

    def test_small_flow_uses_first_rtt(self):
        """Reactive sub-flow sends in the first RTT, beating the 1-RTT
        credit round trip for short flows (the Aeolus-style benefit)."""
        sim = Simulator()
        db = build_dumbbell(sim, fp_factory(), DumbbellSpec(n_pairs=1))
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 8 * KB, 0,
                        scheme="flexpass", group="new")
        stats = launch_fp(sim, spec, done)
        sim.run(until=20 * MILLIS)
        assert done.flow_ids == {1}
        assert stats.reactive_bytes == 8 * KB  # delivered before any credit
        assert done.fct_ms(1) < 0.2

    def test_zero_timeouts(self):
        sim = Simulator()
        db = build_dumbbell(sim, fp_factory(), DumbbellSpec(n_pairs=1))
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 4 * MB, 0,
                        scheme="flexpass", group="new")
        stats = launch_fp(sim, spec, done)
        sim.run(until=60 * MILLIS)
        assert stats.timeouts == 0


class TestCoexistence:
    def test_flexpass_and_dctcp_split_link_evenly(self):
        """Figure 7(c)/9(b): DCTCP and FlexPass each take ~half the link;
        the reactive sub-flow yields almost everything to legacy."""
        sim = Simulator()
        db = build_dumbbell(sim, fp_factory(0.5), DumbbellSpec(n_pairs=2))
        done = Completions()
        size = 40 * MB
        fp_stats = launch_fp(sim, FlowSpec(1, db.senders[0], db.receivers[0],
                                           size, 0, scheme="flexpass", group="new"),
                             done)
        dc_stats = launch_dctcp(sim, FlowSpec(2, db.senders[1], db.receivers[1],
                                              size, 0, scheme="dctcp"), done)
        horizon = 40 * MILLIS
        sim.run(until=horizon)
        fp_bytes = fp_stats.delivered_bytes
        dc_bytes = dc_stats.delivered_bytes
        total = fp_bytes + dc_bytes
        # both roughly half; neither starved (paper: 51% vs 48%)
        assert 0.35 < fp_bytes / total < 0.65
        # reactive sub-flow must not grab meaningful bandwidth from legacy
        assert fp_stats.reactive_bytes < 0.15 * fp_bytes + 200 * KB

    def test_two_flexpass_flows_share_fairly(self):
        """Figure 7(b): two FlexPass flows split the link, mostly proactive."""
        sim = Simulator()
        db = build_dumbbell(sim, fp_factory(0.5), DumbbellSpec(n_pairs=2))
        done = Completions()
        size = 40 * MB
        stats = [
            launch_fp(sim, FlowSpec(i + 1, db.senders[i], db.receivers[i], size, 0,
                                    scheme="flexpass", group="new"), done)
            for i in range(2)
        ]
        sim.run(until=40 * MILLIS)
        delivered = [s.delivered_bytes for s in stats]
        assert min(delivered) / max(delivered) > 0.6
        # proactive dominates: each flow's proactive sub-flow competes for
        # the wq=0.5 reservation (≈ 0.25 each); reactive fills the rest
        for s in stats:
            assert s.proactive_bytes > 0.3 * s.delivered_bytes

    def test_selective_dropping_bounds_reactive_queue(self):
        sim = Simulator()
        qs = QueueSettings(wq=0.5, q1_seldrop_bytes=100 * KB)
        db = build_dumbbell(sim, flexpass_queue_factory(qs), DumbbellSpec(n_pairs=2))
        done = Completions()
        for i in range(2):
            launch_fp(sim, FlowSpec(i + 1, db.senders[i], db.receivers[i],
                                    20 * MB, 0, scheme="flexpass", group="new"),
                      done)
        sim.run(until=30 * MILLIS)
        q1 = db.bottleneck.queue(1)
        assert q1.stats.max_red_bytes <= 100 * KB


class TestIncastZeroTimeouts:
    def test_flexpass_incast_no_timeouts(self):
        """Figure 8: 8-to-1 incast with 64 kB responses — FlexPass finishes
        every flow without a single RTO."""
        sim = Simulator()
        star = build_star(sim, fp_factory(0.5),
                          StarSpec(n_hosts=9, buffer_bytes=2 * MB))
        done = Completions()
        receiver = star.hosts[0]
        all_stats = []
        fid = 0
        for burst in range(8):  # 64 concurrent flows
            for h in star.hosts[1:]:
                fid += 1
                spec = FlowSpec(fid, h, receiver, 64 * KB, 0,
                                scheme="flexpass", group="new")
                all_stats.append(launch_fp(sim, spec, done))
        sim.run(until=300 * MILLIS)
        assert len(done.flow_ids) == fid
        assert sum(s.timeouts for s in all_stats) == 0


class TestProactiveRetransmission:
    def test_tail_loss_recovered_without_reactive_rto(self):
        """Drop-prone reactive tail: proactive retransmission must recover
        it quickly. We force drops with a tiny selective-drop threshold."""
        sim = Simulator()
        qs = QueueSettings(wq=0.5, q1_seldrop_bytes=6 * KB, q1_ecn_bytes=3 * KB)
        db = build_dumbbell(sim, flexpass_queue_factory(qs), DumbbellSpec(n_pairs=2))
        done = Completions()
        stats = []
        for i in range(2):
            spec = FlowSpec(i + 1, db.senders[i], db.receivers[i], 2 * MB, 0,
                            scheme="flexpass", group="new")
            stats.append(launch_fp(sim, spec, done))
        sim.run(until=100 * MILLIS)
        assert len(done.flow_ids) == 2
        assert all(s.delivered_bytes == 2 * MB for s in stats)

    def test_duplicates_are_discarded_at_reassembly(self):
        sim = Simulator()
        qs = QueueSettings(wq=0.5, q1_seldrop_bytes=6 * KB, q1_ecn_bytes=3 * KB)
        db = build_dumbbell(sim, flexpass_queue_factory(qs), DumbbellSpec(n_pairs=2))
        done = Completions()
        stats = []
        for i in range(2):
            spec = FlowSpec(i + 1, db.senders[i], db.receivers[i], 2 * MB, 0,
                            scheme="flexpass", group="new")
            stats.append(launch_fp(sim, spec, done))
        sim.run(until=100 * MILLIS)
        for s in stats:
            assert s.delivered_bytes == 2 * MB  # exactly once despite dups
