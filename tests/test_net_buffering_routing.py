"""Unit tests for shared-buffer management and ECMP routing."""

import pytest
from hypothesis import given, strategies as st

from repro.net.buffering import SharedBuffer, UnlimitedBuffer
from repro.net.routing import compute_next_hops, ecmp_index


class TestSharedBuffer:
    def test_dynamic_threshold_shrinks_as_buffer_fills(self):
        buf = SharedBuffer(10_000, alpha=0.25)
        assert buf.threshold() == 2500
        assert buf.try_admit(0, 2000)
        assert buf.threshold() == 2000  # 0.25 * 8000

    def test_queue_over_threshold_rejected(self):
        buf = SharedBuffer(10_000, alpha=0.25)
        # queue already holds 2400; threshold is 2500 -> 200-byte pkt rejected
        buf.used = 2400
        assert not buf.try_admit(2400, 200)
        assert buf.drops == 1

    def test_hard_capacity_enforced(self):
        buf = SharedBuffer(1000, alpha=10.0)
        assert buf.try_admit(0, 900)
        assert not buf.try_admit(0, 200)

    def test_release_returns_bytes(self):
        buf = SharedBuffer(1000, alpha=1.0)
        buf.try_admit(0, 500)
        buf.release(500)
        assert buf.used == 0

    def test_release_below_zero_raises(self):
        buf = SharedBuffer(1000)
        with pytest.raises(RuntimeError):
            buf.release(1)

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            SharedBuffer(0)
        with pytest.raises(ValueError):
            SharedBuffer(100, alpha=0)

    @given(st.lists(st.integers(64, 1584), max_size=200))
    def test_property_used_never_exceeds_capacity(self, sizes):
        buf = SharedBuffer(20_000, alpha=0.5)
        admitted = []
        for s in sizes:
            if buf.try_admit(0, s):
                admitted.append(s)
            assert 0 <= buf.used <= buf.capacity
        for s in admitted:
            buf.release(s)
        assert buf.used == 0

    def test_unlimited_buffer_always_admits(self):
        buf = UnlimitedBuffer()
        assert buf.try_admit(10**12, 10**9)  # any occupancy, any size
        assert buf.used == 10**9
        buf.release(10**9)
        assert buf.used == 0

    def test_unlimited_buffer_rejects_negative_occupancy(self):
        """A release without a matching admit (double release) must raise,
        exactly like SharedBuffer — a silent negative gauge defeated the
        audit's buffer-conservation check on host NICs."""
        buf = UnlimitedBuffer()
        buf.try_admit(0, 100)
        buf.release(100)
        with pytest.raises(RuntimeError, match="negative"):
            buf.release(1)


class TestRouting:
    def _diamond(self):
        #    1
        #  /   \
        # 0     3 -- 4(host)
        #  \   /
        #    2
        return {0: [1, 2], 1: [0, 3], 2: [0, 3], 3: [1, 2, 4], 4: [3]}

    def test_equal_cost_paths_found(self):
        nh = compute_next_hops(self._diamond(), destinations=[4])
        assert nh[0][4] == (1, 2)
        assert nh[1][4] == (3,)
        assert nh[3][4] == (4,)

    def test_no_route_to_self(self):
        nh = compute_next_hops(self._diamond(), destinations=[4])
        assert 4 not in nh[4]

    def test_line_topology(self):
        adj = {0: [1], 1: [0, 2], 2: [1]}
        nh = compute_next_hops(adj, destinations=[0, 2])
        assert nh[0][2] == (1,)
        assert nh[1][0] == (0,)
        assert nh[1][2] == (2,)

    def test_unreachable_destination_omitted(self):
        adj = {0: [1], 1: [0], 2: []}
        nh = compute_next_hops(adj, destinations=[2])
        assert 2 not in nh[0]


class TestEcmpHash:
    def test_symmetric_in_endpoints(self):
        """Required for ExpressPass: reverse-path credits hash like data."""
        for flow in range(50):
            assert ecmp_index(flow, 3, 9, 4) == ecmp_index(flow, 9, 3, 4)

    def test_deterministic(self):
        assert ecmp_index(7, 1, 2, 8) == ecmp_index(7, 1, 2, 8)

    def test_single_choice(self):
        assert ecmp_index(123, 1, 2, 1) == 0

    def test_zero_choices_raises(self):
        with pytest.raises(ValueError):
            ecmp_index(1, 1, 2, 0)

    def test_spreads_flows(self):
        idxs = {ecmp_index(f, 1, 2, 4) for f in range(100)}
        assert idxs == {0, 1, 2, 3}

    @given(st.integers(0, 1 << 30), st.integers(0, 500), st.integers(0, 500), st.integers(1, 16))
    def test_property_in_range_and_symmetric(self, flow, a, b, n):
        i = ecmp_index(flow, a, b, n)
        assert 0 <= i < n
        assert i == ecmp_index(flow, b, a, n)
