"""Integration tests for the experiment harness (config, runner, sweeps)."""

import pytest

from repro.experiments.config import ExperimentConfig, QueueSettings, SchemeName
from repro.experiments.runner import build_flow_specs, run_experiment
from repro.experiments.scenarios import (
    flexpass_queue_factory,
    make_scheme_setup,
    naive_queue_factory,
    owf_queue_factory,
)
from repro.experiments.sweep import (
    SweepCell,
    default_sweep_config,
    deployment_sweep,
    fig10_rows,
    fig12_rows,
)
from repro.net.packet import Dscp
from repro.net.topology import ClosSpec, build_clos
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.units import GBPS, KB, MILLIS


def tiny_cfg(**overrides):
    base = dict(
        scheme=SchemeName.FLEXPASS,
        deployment=0.5,
        workload="websearch",
        load=0.4,
        sim_time_ns=3 * MILLIS,
        size_scale=16.0,
        seed=3,
        clos=ClosSpec(n_pods=2, aggs_per_pod=1, tors_per_pod=2, hosts_per_tor=2),
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestQueueFactories:
    def test_flexpass_three_queues(self):
        schedules, classifier = flexpass_queue_factory(QueueSettings(wq=0.5))(
            "p", 10 * GBPS, False
        )
        assert len(schedules) == 3
        assert schedules[0].priority == 0 and schedules[0].pacer is not None
        assert schedules[1].weight == pytest.approx(0.5)
        assert classifier[Dscp.CREDIT.value] == 0
        assert classifier[Dscp.REACTIVE_DATA.value] == 1
        assert classifier[Dscp.LEGACY.value] == 2

    def test_flexpass_credit_rate_scaled_by_wq(self):
        for wq in (0.4, 0.6):
            schedules, _ = flexpass_queue_factory(QueueSettings(wq=wq))(
                "p", 10 * GBPS, False
            )
            rate = schedules[0].pacer.rate_bps
            assert rate == int(10 * GBPS * wq * 84 / 1584)

    def test_naive_shares_one_data_queue(self):
        schedules, classifier = naive_queue_factory(QueueSettings())(
            "p", 10 * GBPS, False
        )
        assert len(schedules) == 2
        data_targets = {classifier[Dscp.PROACTIVE_DATA.value],
                        classifier[Dscp.LEGACY.value]}
        assert data_targets == {1}

    def test_owf_weights_match_fraction(self):
        schedules, _ = owf_queue_factory(QueueSettings(), 0.3)("p", 10 * GBPS, False)
        assert schedules[1].weight == pytest.approx(0.3)
        assert schedules[2].weight == pytest.approx(0.7)

    def test_owf_fraction_clamped(self):
        schedules, _ = owf_queue_factory(QueueSettings(), 0.0)("p", 10 * GBPS, False)
        assert schedules[1].weight > 0

    def test_unknown_scheme_rejected(self):
        cfg = tiny_cfg()
        object.__setattr__(cfg, "scheme", "bogus")
        with pytest.raises(ValueError):
            make_scheme_setup(cfg)


class TestBuildFlowSpecs:
    def test_groups_assigned_by_deployment(self):
        cfg = tiny_cfg(deployment=0.5)
        sim = Simulator()
        setup = make_scheme_setup(cfg)
        clos = build_clos(sim, setup.queue_factory, cfg.clos)
        specs, plan = build_flow_specs(cfg, clos, RngRegistry(cfg.seed))
        assert specs
        groups = {s.group for s in specs}
        assert groups == {"new", "legacy"}
        for s in specs:
            assert s.group == plan.flow_group(s.src, s.dst)

    def test_dctcp_scheme_all_legacy(self):
        cfg = tiny_cfg(scheme=SchemeName.DCTCP, deployment=1.0)
        sim = Simulator()
        setup = make_scheme_setup(cfg)
        clos = build_clos(sim, setup.queue_factory, cfg.clos)
        specs, _ = build_flow_specs(cfg, clos, RngRegistry(cfg.seed))
        assert all(s.group == "legacy" for s in specs)

    def test_foreground_flows_tagged(self):
        cfg = tiny_cfg(foreground_fraction=0.1, sim_time_ns=10 * MILLIS)
        sim = Simulator()
        setup = make_scheme_setup(cfg)
        clos = build_clos(sim, setup.queue_factory, cfg.clos)
        specs, _ = build_flow_specs(cfg, clos, RngRegistry(cfg.seed))
        roles = {s.role for s in specs}
        assert roles == {"bg", "fg"}
        assert all(s.size_bytes == cfg.foreground_request_bytes
                   for s in specs if s.role == "fg")


class TestRunExperiment:
    def test_run_produces_records(self):
        res = run_experiment(tiny_cfg())
        assert len(res.records) > 20
        assert res.completed > 0
        assert res.routing_failures == 0
        assert res.events_run > 0

    def test_deterministic_given_seed(self):
        r1 = run_experiment(tiny_cfg(seed=11))
        r2 = run_experiment(tiny_cfg(seed=11))
        f1 = [(r.flow_id, r.fct_ns) for r in r1.records]
        f2 = [(r.flow_id, r.fct_ns) for r in r2.records]
        assert f1 == f2

    def test_different_seed_different_traffic(self):
        r1 = run_experiment(tiny_cfg(seed=1))
        r2 = run_experiment(tiny_cfg(seed=2))
        assert [(r.flow_id, r.size_bytes) for r in r1.records] != \
               [(r.flow_id, r.size_bytes) for r in r2.records]

    def test_all_schemes_run(self):
        for scheme in SchemeName:
            res = run_experiment(tiny_cfg(scheme=scheme))
            assert res.completed > 0, scheme

    def test_q1_sampling(self):
        res = run_experiment(tiny_cfg(scheme=SchemeName.FLEXPASS), sample_q1=True)
        # p90 can legitimately sit below the mean for heavy-tailed samples;
        # just require sampling to have produced sane numbers.
        assert res.q1_avg_kb >= 0.0
        assert res.q1_p90_kb >= 0.0
        assert res.q1_avg_red_kb <= res.q1_avg_kb + 1e-9

    def test_fct_filters(self):
        res = run_experiment(tiny_cfg())
        s_all = res.fct()
        s_small = res.fct(small=True)
        assert s_small.count <= s_all.count
        new = res.fct(group="new")
        legacy = res.fct(group="legacy")
        assert new.count + legacy.count == s_all.count


class TestSweep:
    def test_deployment_sweep_shares_baseline(self):
        base = tiny_cfg()
        grid = deployment_sweep(base, schemes=(SchemeName.FLEXPASS,
                                               SchemeName.NAIVE),
                                deployments=(0.0, 1.0))
        assert grid[("flexpass", 0.0)] is grid[("naive", 0.0)]
        assert len(grid) == 4

    def test_projection_rows(self):
        base = tiny_cfg()
        grid = deployment_sweep(base, schemes=(SchemeName.FLEXPASS,),
                                deployments=(0.0, 1.0))
        rows10 = fig10_rows(grid)
        rows12 = fig12_rows(grid)
        assert len(rows10) == len(rows12) == 2

    def test_default_sweep_config_overridable(self):
        cfg = default_sweep_config(load=0.7, seed=9)
        assert cfg.load == 0.7
        assert cfg.seed == 9

    def test_sweepcell_from_result(self):
        res = run_experiment(tiny_cfg())
        cell = SweepCell.from_result(res)
        assert cell.flows == len(res.records)
        assert cell.scheme == "flexpass"
