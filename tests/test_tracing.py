"""Tests for the packet tracer, including path/symmetry assertions."""

from repro.core.flexpass import FlexPassParams, FlexPassReceiver, FlexPassSender
from repro.experiments.config import QueueSettings
from repro.experiments.scenarios import flexpass_queue_factory
from repro.metrics.tracing import PacketTracer
from repro.net.packet import PacketKind
from repro.net.topology import ClosSpec, DumbbellSpec, build_clos, build_dumbbell
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, KB, MILLIS
from repro.transports.base import FlowSpec, FlowStats
from repro.transports.credit_feedback import CREDIT_PER_DATA
from repro.transports.dctcp import DctcpParams, DctcpReceiver, DctcpSender

from tests.test_net_port_topology import single_queue_factory
from tests.util import Completions


def run_traced_flexpass(size=100 * KB):
    sim = Simulator()
    db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings(wq=0.5)),
                        DumbbellSpec(n_pairs=1))
    tracer = PacketTracer(db.topo.nodes.values(), flow_ids=[1])
    params = FlexPassParams(max_credit_rate_bps=10 * GBPS * 0.5 * CREDIT_PER_DATA)
    spec = FlowSpec(1, db.senders[0], db.receivers[0], size, 0,
                    scheme="flexpass", group="new")
    stats = FlowStats()
    FlexPassReceiver(sim, spec, stats, params)
    sender = FlexPassSender(sim, spec, stats, params)
    sim.at(0, sender.start)
    sim.run(until=60 * MILLIS)
    return db, tracer, stats


class TestTracer:
    def test_records_all_packet_kinds(self):
        _, tracer, _ = run_traced_flexpass()
        kinds = {e.kind for e in tracer.events}
        assert {"DATA", "ACK", "CREDIT", "CREDIT_REQUEST"} <= kinds

    def test_path_of_segment_crosses_fabric(self):
        db, tracer, _ = run_traced_flexpass()
        path = tracer.path_of(1, flow_seq=0)
        # data packet: sender NIC -> swL -> swR (3 transmit events)
        assert len(path) >= 3
        assert path[0].startswith("s0->")
        assert "swL->swR" in path

    def test_flow_filter(self):
        sim = Simulator()
        db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings()),
                            DumbbellSpec(n_pairs=2))
        tracer = PacketTracer(db.topo.nodes.values(), flow_ids=[2])
        for fid in (1, 2):
            spec = FlowSpec(fid, db.senders[fid - 1], db.receivers[fid - 1],
                            20 * KB, 0, scheme="dctcp")
            st = FlowStats()
            DctcpReceiver(sim, spec, st, DctcpParams())
            s = DctcpSender(sim, spec, st, DctcpParams())
            sim.at(0, s.start)
        sim.run(until=20 * MILLIS)
        assert tracer.events
        assert all(e.flow_id == 2 for e in tracer.events)

    def test_overflow_guard(self):
        sim = Simulator()
        db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings()),
                            DumbbellSpec(n_pairs=1))
        tracer = PacketTracer(db.topo.nodes.values(), max_events=5)
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 50 * KB, 0,
                        scheme="dctcp")
        st = FlowStats()
        DctcpReceiver(sim, spec, st, DctcpParams())
        s = DctcpSender(sim, spec, st, DctcpParams())
        sim.at(0, s.start)
        sim.run(until=20 * MILLIS)
        assert len(tracer.events) == 5
        assert tracer.overflowed

    def test_dump_truncates(self):
        _, tracer, _ = run_traced_flexpass()
        out = tracer.dump(limit=3)
        assert "more events" in out

    def test_close_uninstalls_every_hook(self):
        db, tracer, _ = run_traced_flexpass()
        assert any(port.monitors
                   for node in db.topo.nodes.values()
                   for port in node.ports.values())
        recorded = len(tracer.events)
        tracer.close()
        for node in db.topo.nodes.values():
            for port in node.ports.values():
                assert not port.monitors, f"{port.name} still hooked"
        # idempotent, and recorded events stay queryable
        tracer.close()
        assert len(tracer.events) == recorded

    def test_context_manager_closes_on_exit(self):
        sim = Simulator()
        db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings()),
                            DumbbellSpec(n_pairs=1))
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 20 * KB, 0,
                        scheme="dctcp")
        st = FlowStats()
        DctcpReceiver(sim, spec, st, DctcpParams())
        s = DctcpSender(sim, spec, st, DctcpParams())
        sim.at(0, s.start)
        with PacketTracer(db.topo.nodes.values()) as tracer:
            sim.run(until=20 * MILLIS)
        assert tracer.events
        for node in db.topo.nodes.values():
            for port in node.ports.values():
                assert not port.monitors

    def test_close_tolerates_externally_cleared_monitors(self):
        sim = Simulator()
        db = build_dumbbell(sim, single_queue_factory, DumbbellSpec(n_pairs=1))
        tracer = PacketTracer(db.topo.nodes.values())
        for node in db.topo.nodes.values():
            for port in node.ports.values():
                port.monitors.clear()
        tracer.close()  # must not raise


class TestPathSymmetry:
    def test_credits_mirror_data_path_on_clos(self):
        """ExpressPass's core assumption: a flow's credits traverse the
        reverse of its data path (symmetric ECMP)."""
        sim = Simulator()
        clos = build_clos(
            sim, flexpass_queue_factory(QueueSettings(wq=0.5)),
            ClosSpec(n_pods=2, aggs_per_pod=2, tors_per_pod=2, hosts_per_tor=2),
        )
        src = clos.racks()[0][0]
        dst = clos.racks()[-1][0]  # cross-pod: through the core
        tracer = PacketTracer(clos.topo.nodes.values(), flow_ids=[1])
        params = FlexPassParams(
            max_credit_rate_bps=10 * GBPS * 0.5 * CREDIT_PER_DATA)
        spec = FlowSpec(1, src, dst, 400 * KB, 0, scheme="flexpass",
                        group="new")
        stats = FlowStats()
        FlexPassReceiver(sim, spec, stats, params)
        sender = FlexPassSender(sim, spec, stats, params)
        sim.at(0, sender.start)
        sim.run(until=60 * MILLIS)
        assert stats.completed

        def hops(events):
            return {e.port for e in events}

        data_ports = hops(e for e in tracer.events
                          if e.kind == "DATA" and e.subflow == 0)
        credit_ports = hops(e for e in tracer.events if e.kind == "CREDIT")

        def reverse(port_name):
            a, b = port_name.split("->")
            return f"{b}->{a}"

        # every switch-level data hop has its mirror in the credit path
        for port in data_ports:
            assert reverse(port) in credit_ports, (
                f"credit path missed mirror of {port}: {sorted(credit_ports)}"
            )
