"""System-level conservation invariants under randomized scenarios.

Whatever mix of transports, sizes, and start times runs on a shared fabric:

* every byte delivered to an application was sent exactly once (no
  duplicate delivery, no invented bytes);
* switch buffer accounting returns to zero when the network drains;
* selective dropping never admits red bytes beyond the threshold;
* packet conservation: enqueued = dequeued + dropped, per queue.
"""

from hypothesis import given, settings, strategies as st

from repro.core.flexpass import FlexPassParams, FlexPassReceiver, FlexPassSender
from repro.experiments.config import QueueSettings
from repro.experiments.scenarios import flexpass_queue_factory
from repro.net.topology import DumbbellSpec, build_dumbbell
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, KB, MILLIS
from repro.transports.base import FlowSpec, FlowStats
from repro.transports.credit_feedback import CREDIT_PER_DATA
from repro.transports.dctcp import DctcpParams, DctcpReceiver, DctcpSender


@st.composite
def scenarios(draw):
    n_flows = draw(st.integers(1, 6))
    flows = []
    for i in range(n_flows):
        flows.append((
            draw(st.sampled_from(["dctcp", "flexpass"])),
            draw(st.integers(1, 400)) * KB,
            draw(st.integers(0, 2)) * MILLIS,
            draw(st.integers(0, 1)),  # sender pair index
        ))
    return flows


@given(scenarios())
@settings(max_examples=15, deadline=None)
def test_property_mixed_traffic_conserves_bytes(flows):
    sim = Simulator()
    db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings(wq=0.5)),
                        DumbbellSpec(n_pairs=2))
    all_stats = []
    for fid, (scheme, size, start, pair) in enumerate(flows, start=1):
        spec = FlowSpec(fid, db.senders[pair], db.receivers[pair], size, start,
                        scheme=scheme,
                        group="new" if scheme == "flexpass" else "legacy")
        stats = FlowStats()
        if scheme == "dctcp":
            DctcpReceiver(sim, spec, stats, DctcpParams())
            sender = DctcpSender(sim, spec, stats, DctcpParams())
        else:
            params = FlexPassParams(
                max_credit_rate_bps=10 * GBPS * 0.5 * CREDIT_PER_DATA)
            FlexPassReceiver(sim, spec, stats, params)
            sender = FlexPassSender(sim, spec, stats, params)
        sim.at(start, sender.start)
        all_stats.append((size, stats))

    sim.run(until=400 * MILLIS)

    # 1. exactly-once delivery
    for size, stats in all_stats:
        assert stats.completed, "flow starved on an idle-capacity fabric"
        assert stats.delivered_bytes == size

    # 2. buffer accounting drains to zero
    for sw in db.topo.switches:
        assert sw.buffer.used == 0

    # 3+4. per-queue conservation and selective-dropping bound
    for node in db.topo.nodes.values():
        for port in node.ports.values():
            for q in port.scheduler.queues:
                s = q.stats
                assert s.enqueued == s.dequeued + len(q._fifo)
                if q.config.selective_drop_bytes is not None:
                    assert s.max_red_bytes <= q.config.selective_drop_bytes


def test_queues_fully_drain_after_traffic():
    sim = Simulator()
    db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings(wq=0.5)),
                        DumbbellSpec(n_pairs=2))
    params = FlexPassParams(max_credit_rate_bps=10 * GBPS * 0.5 * CREDIT_PER_DATA)
    for fid in range(1, 5):
        spec = FlowSpec(fid, db.senders[fid % 2], db.receivers[(fid + 1) % 2],
                        300 * KB, 0, scheme="flexpass", group="new")
        stats = FlowStats()
        FlexPassReceiver(sim, spec, stats, params)
        sender = FlexPassSender(sim, spec, stats, params)
        sim.at(0, sender.start)
    sim.run(until=200 * MILLIS)
    for port in db.topo.all_ports():
        assert port.backlog_bytes() == 0
        assert not port.busy
    # No events leaked (timers all cancelled once flows finished).
    assert sim.pending() == 0
