"""Shared helpers for transport-level tests."""

from repro.net.packet import Dscp
from repro.net.queues import PacketQueue, QueueConfig
from repro.net.ratelimit import TokenBucket
from repro.net.scheduler import QueueSchedule
from repro.sim.units import KB

ALL_DSCPS = [d.value for d in Dscp] + [Dscp.HOMA_BASE + p for p in range(8)]


def ecn_queue_factory(ecn_kb=65):
    """Single FIFO with DCTCP-style ECN marking for every traffic class."""

    def factory(name, rate_bps, is_host_nic):
        q = PacketQueue(QueueConfig(name="data", ecn_threshold_bytes=ecn_kb * KB))
        classifier = {d: 0 for d in ALL_DSCPS}
        return [QueueSchedule(q, priority=0, weight=1.0)], classifier

    return factory


def expresspass_queue_factory(wq=1.0, ecn_kb=65, credit_ratio=84 / 1584):
    """Two queues: strict-priority rate-limited credit queue + one data FIFO.

    ``wq`` scales the credit rate limit, as FlexPass does (§4.1); plain
    ExpressPass uses wq=1.0 (credits sized to the full link).
    """

    def factory(name, rate_bps, is_host_nic):
        credit_q = PacketQueue(QueueConfig(name="credit", capacity_bytes=1 * KB))
        data_q = PacketQueue(QueueConfig(name="data", ecn_threshold_bytes=ecn_kb * KB))
        pacer = TokenBucket(int(rate_bps * wq * credit_ratio), bucket_bytes=2 * 84)
        schedules = [
            QueueSchedule(credit_q, priority=0, weight=1.0, pacer=pacer),
            QueueSchedule(data_q, priority=1, weight=1.0),
        ]
        classifier = {d: 1 for d in ALL_DSCPS}
        classifier[Dscp.CREDIT.value] = 0
        return schedules, classifier

    return factory


class Completions:
    """Collects (spec, stats) completion callbacks."""

    def __init__(self):
        self.records = []

    def __call__(self, spec, stats):
        self.records.append((spec, stats))

    def fct_ms(self, flow_id):
        for spec, stats in self.records:
            if spec.flow_id == flow_id:
                return stats.fct_ns() / 1e6
        raise KeyError(flow_id)

    @property
    def flow_ids(self):
        return {spec.flow_id for spec, _ in self.records}
