"""End-to-end tests for ExpressPass: credit pacing, feedback, coexistence."""

import pytest

from repro.net.packet import Dscp
from repro.net.topology import DumbbellSpec, build_dumbbell
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, KB, MB, MILLIS
from repro.transports.base import FlowSpec, FlowStats
from repro.transports.credit_feedback import CREDIT_PER_DATA, CreditFeedback, FeedbackParams
from repro.transports.dctcp import DctcpParams, DctcpReceiver, DctcpSender
from repro.transports.expresspass import (
    ExpressPassParams,
    ExpressPassReceiver,
    ExpressPassSender,
)

from tests.util import Completions, expresspass_queue_factory


def xp_params(rate_bps=10 * GBPS, wq=1.0):
    return ExpressPassParams(max_credit_rate_bps=rate_bps * wq * CREDIT_PER_DATA)


def launch_xp(sim, spec, done, params):
    stats = FlowStats()
    ExpressPassReceiver(sim, spec, stats, params, on_complete=done)
    sender = ExpressPassSender(sim, spec, stats, params)
    sim.at(spec.start_ns, sender.start)
    return stats


def launch_dctcp(sim, spec, done):
    stats = FlowStats()
    params = DctcpParams()
    DctcpReceiver(sim, spec, stats, params, on_complete=done)
    sender = DctcpSender(sim, spec, stats, params)
    sim.at(spec.start_ns, sender.start)
    return stats


class TestSingleFlow:
    def test_flow_completes_with_credits(self):
        sim = Simulator()
        db = build_dumbbell(sim, expresspass_queue_factory(), DumbbellSpec(n_pairs=1))
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 1 * MB, 0, scheme="xp")
        stats = launch_xp(sim, spec, done, xp_params())
        sim.run(until=50 * MILLIS)
        assert done.flow_ids == {1}
        assert stats.credits_sent > 0
        assert stats.delivered_bytes == 1 * MB

    def test_rate_matches_credit_limit(self):
        """Data throughput is pinned at the credit-queue rate limit: with
        wq=0.5 a lone flow gets ~half the link."""
        sim = Simulator()
        db = build_dumbbell(
            sim, expresspass_queue_factory(wq=0.5), DumbbellSpec(n_pairs=1)
        )
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 2 * MB, 0, scheme="xp")
        launch_xp(sim, spec, done, xp_params(wq=0.5))
        sim.run(until=50 * MILLIS)
        assert done.flow_ids == {1}
        # 2 MB at 5 Gbps ~ 3.2 ms (+1 RTT for the credit request)
        fct = done.fct_ms(1)
        assert 3.0 < fct < 4.5

    def test_full_rate_utilization(self):
        sim = Simulator()
        db = build_dumbbell(sim, expresspass_queue_factory(), DumbbellSpec(n_pairs=1))
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 2 * MB, 0, scheme="xp")
        launch_xp(sim, spec, done, xp_params())
        sim.run(until=50 * MILLIS)
        # 2 MB at ~10 Gbps (84/1584 credit overhead -> data ~94.7% of line)
        fct = done.fct_ms(1)
        assert 1.6 < fct < 2.6

    def test_near_zero_queue(self):
        """Credit-scheduled data does not build queues (the proactive
        property FlexPass wants to preserve)."""
        sim = Simulator()
        db = build_dumbbell(sim, expresspass_queue_factory(), DumbbellSpec(n_pairs=1))
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 4 * MB, 0, scheme="xp")
        launch_xp(sim, spec, done, xp_params())
        sim.run(until=50 * MILLIS)
        data_q = db.bottleneck.queue(1)
        assert data_q.stats.max_bytes <= 5 * 1584  # a handful of packets


class TestTwoFlows:
    def test_two_flows_share_fairly(self):
        """Per-link credit rate limiting drops excess credits; feedback
        converges both flows to ~half the bottleneck."""
        sim = Simulator()
        db = build_dumbbell(sim, expresspass_queue_factory(), DumbbellSpec(n_pairs=2))
        done = Completions()
        for i in range(2):
            spec = FlowSpec(i + 1, db.senders[i], db.receivers[i], 2 * MB, 0,
                            scheme="xp")
            launch_xp(sim, spec, done, xp_params())
        sim.run(until=100 * MILLIS)
        assert done.flow_ids == {1, 2}
        fcts = [done.fct_ms(1), done.fct_ms(2)]
        # each ~2MB at ~5G -> ~3.4ms; allow convergence slack
        for f in fcts:
            assert f < 9.0
        assert max(fcts) / min(fcts) < 1.6

    def test_credit_drops_at_rate_limiter(self):
        sim = Simulator()
        db = build_dumbbell(sim, expresspass_queue_factory(), DumbbellSpec(n_pairs=2))
        done = Completions()
        for i in range(2):
            spec = FlowSpec(i + 1, db.senders[i], db.receivers[i], 2 * MB, 0,
                            scheme="xp")
            launch_xp(sim, spec, done, xp_params())
        sim.run(until=100 * MILLIS)
        # both receivers start crediting at full rate: the shared reverse
        # bottleneck (right->left) credit queue must shed the excess.
        credit_q = db.topo.port(db.right, db.left).queue(0)
        assert credit_q.stats.dropped_cap > 0


class TestStarvationPremise:
    """Figure 1(a) / Figure 9(a): naive coexistence starves DCTCP."""

    def _run(self, ms=30):
        """Measure while both flows are still active (40 MB at ~10G needs
        >32 ms, so a 30 ms horizon keeps the link contended throughout)."""
        sim = Simulator()
        db = build_dumbbell(sim, expresspass_queue_factory(), DumbbellSpec(n_pairs=2))
        done = Completions()
        size = 40 * MB  # long-running flows
        xp_spec = FlowSpec(1, db.senders[0], db.receivers[0], size, 0, scheme="xp")
        dc_spec = FlowSpec(2, db.senders[1], db.receivers[1], size, 0, scheme="dctcp")
        xp_stats = launch_xp(sim, xp_spec, done, xp_params())
        dc_stats = launch_dctcp(sim, dc_spec, done)
        sim.run(until=ms * MILLIS)
        return xp_stats, dc_stats

    def test_dctcp_starved_by_expresspass(self):
        xp_stats, dc_stats = self._run()
        # ExpressPass receives credits at line rate and ignores ECN; DCTCP
        # collapses to a small fraction (paper: ~5-9% of capacity).
        assert xp_stats.delivered_bytes > 4 * dc_stats.delivered_bytes


class TestCreditFeedbackUnit:
    def _feed(self, fb, echoes):
        for e in echoes:
            fb.note_data_received(e)
        return fb.on_period()

    def test_rate_rises_when_no_loss(self):
        fb = CreditFeedback(1e9, 100_000)
        fb.rate_bps = 1e8
        seq = 0
        for _ in range(50):
            self._feed(fb, range(seq, seq + 10))  # contiguous echoes: no loss
            seq += 10
        assert fb.rate_bps > 1e8

    def test_rate_falls_on_loss(self):
        fb = CreditFeedback(1e9, 100_000)
        start = fb.rate_bps
        seq = 0
        for _ in range(5):
            # every other credit lost: echoes 0,2,4,... -> 50% loss
            self._feed(fb, range(seq, seq + 20, 2))
            seq += 20
        assert fb.rate_bps < start * 0.5

    def test_rate_clamped_to_bounds(self):
        fb = CreditFeedback(1e9, 100_000)
        seq = 0
        for _ in range(100):
            self._feed(fb, range(seq, seq + 40, 4))  # 75% loss repeatedly
            seq += 40
        assert fb.rate_bps >= fb.min_rate
        for _ in range(500):
            self._feed(fb, range(seq, seq + 10))
            seq += 10
        assert fb.rate_bps <= fb.max_rate

    def test_step_grows_multiplicatively(self):
        """Consecutive increases accelerate (aggressiveness alpha)."""
        fb = CreditFeedback(1e12, 100_000, FeedbackParams(alpha=2.0, s_max_bps=1e11))
        fb.rate_bps = 1e6
        rates = []
        seq = 0
        for _ in range(10):
            rates.append(self._feed(fb, range(seq, seq + 10)))
            seq += 10
        deltas = [b - a for a, b in zip(rates, rates[1:])]
        assert deltas[-1] > deltas[0]

    def test_idle_period_keeps_rate(self):
        fb = CreditFeedback(1e9, 100_000)
        before = fb.rate_bps
        fb.on_period()
        assert fb.rate_bps == before

    def test_loss_counted_from_echo_gaps(self):
        fb = CreditFeedback(1e9, 100_000)
        fb.note_data_received(0)
        fb.note_data_received(4)  # credits 1-3 lost
        assert fb._lost == 3
        assert fb._received == 2

    def test_unechoed_data_counts_as_received(self):
        fb = CreditFeedback(1e9, 100_000)
        fb.note_data_received(-1)
        assert fb._received == 1
        assert fb._lost == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CreditFeedback(0, 100)
        with pytest.raises(ValueError):
            CreditFeedback(1e9, 0)
