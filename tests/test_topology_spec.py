"""Declarative topology ingestion: ontology, registry, builds, faults."""

import dataclasses
import pickle

import pytest

from repro.experiments.config import ExperimentConfig, SchemeName
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import (
    build_topology,
    make_scheme_setup,
    regional_fabric_config,
)
from repro.faults.plan import FaultPlan, LinkFailureSpec, SiteFailureSpec
from repro.net.fabric import (
    FabricHandle,
    LinkSpec,
    NodeSpec,
    SiteSpec,
    TopologySpec,
    TopologySpecError,
    build_from_spec,
    clos_to_topology_spec,
    load_topology_spec,
    parse_delay_ns,
    parse_rate_bps,
)
from repro.net.topology import (
    ClosSpec,
    DumbbellSpec,
    build,
    build_clos,
    register_topology,
    spec_class,
    topology_kinds,
)
from repro.sim.engine import Simulator
from repro.sim.units import MILLIS


def small_spec_dict(**overrides):
    """A tiny valid 2-site fabric as a plain dict."""
    d = {
        "name": "mini",
        "sites": [
            {"name": "DC-A", "region": "east"},
            {"name": "DC-B", "region": "west"},
        ],
        "nodes": [
            {"name": "SW-A", "kind": "switch", "site": "DC-A", "tier": 1},
            {"name": "SW-B", "kind": "switch", "site": "DC-B", "tier": 1},
            {"name": "hA0", "kind": "host", "site": "DC-A"},
            {"name": "hA1", "kind": "host", "site": "DC-A"},
            {"name": "hB0", "kind": "host", "site": "DC-B"},
            {"name": "hB1", "kind": "host", "site": "DC-B"},
        ],
        "links": [
            {"a": "SW-A", "b": "SW-B", "rate": "40G", "delay": "500us",
             "region": "wan"},
            {"a": "hA0", "b": "SW-A", "rate": "10G", "delay": "6us"},
            {"a": "hA1", "b": "SW-A", "rate": "10G", "delay": "6us"},
            {"a": "hB0", "b": "SW-B", "rate": "10G", "delay": "6us"},
            {"a": "hB1", "b": "SW-B", "rate": "10G", "delay": "6us"},
        ],
    }
    d.update(overrides)
    return d


def queue_factory():
    return make_scheme_setup(
        ExperimentConfig(scheme=SchemeName.FLEXPASS)).queue_factory


class TestUnitParsing:
    def test_rates(self):
        assert parse_rate_bps(1000) == 1000
        assert parse_rate_bps("40G") == 40_000_000_000
        assert parse_rate_bps("40Gbps") == 40_000_000_000
        assert parse_rate_bps("250Mbps") == 250_000_000
        assert parse_rate_bps("2.5g") == 2_500_000_000

    def test_delays(self):
        assert parse_delay_ns(4000) == 4000
        assert parse_delay_ns("4us") == 4000
        assert parse_delay_ns("1ms") == 1_000_000
        assert parse_delay_ns("500ns") == 500

    def test_garbage_rejected(self):
        with pytest.raises(TopologySpecError):
            parse_rate_bps("fast")
        with pytest.raises(TopologySpecError):
            parse_delay_ns("40G")  # G is not a delay unit
        with pytest.raises(TopologySpecError):
            parse_rate_bps(None)


class TestRoundTrip:
    def test_dict_yaml_spec_yaml_byte_identical(self):
        spec = TopologySpec.from_dict(small_spec_dict())
        yaml1 = spec.to_yaml()
        spec2 = TopologySpec.from_yaml(yaml1)
        assert spec2 == spec
        assert spec2.to_yaml() == yaml1

    def test_units_normalized(self):
        spec = TopologySpec.from_dict(small_spec_dict())
        wan = spec.links[0]
        assert wan.rate_bps == 40_000_000_000
        assert wan.delay_ns == 500_000

    def test_picklable_and_frozen(self):
        spec = TopologySpec.from_dict(small_spec_dict())
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.name = "other"

    def test_cache_keying(self):
        from repro.experiments.cache import config_key

        spec = TopologySpec.from_dict(small_spec_dict())
        base = ExperimentConfig()
        a = config_key(base.with_(topology_spec=spec))
        b = config_key(base.with_(topology_spec=spec))
        assert a == b
        bigger = dataclasses.replace(spec, name="renamed")
        assert config_key(base.with_(topology_spec=bigger)) != a
        assert config_key(base) != a

    def test_load_from_yaml_file(self, tmp_path):
        spec = TopologySpec.from_dict(small_spec_dict())
        p = tmp_path / "mini.yaml"
        p.write_text(spec.to_yaml())
        assert load_topology_spec(p) == spec

    def test_load_from_json_file(self, tmp_path):
        import json

        spec = TopologySpec.from_dict(small_spec_dict())
        p = tmp_path / "mini.json"
        p.write_text(json.dumps(spec.to_dict()))
        assert load_topology_spec(p) == spec

    def test_load_from_csv_dir_azure_headers(self, tmp_path):
        (tmp_path / "datacenters.csv").write_text(
            "DataCenterId,Region\nDC-A,east\nDC-B,west\n")
        (tmp_path / "routers.csv").write_text(
            "RouterId,DataCenterId,Tier,Kind\n"
            "SW-A,DC-A,1,switch\nSW-B,DC-B,1,switch\n"
            "hA0,DC-A,0,host\nhB0,DC-B,0,host\n")
        (tmp_path / "links.csv").write_text(
            "LinkId,SourceRouterId,TargetRouterId,CapacityGbps,LatencyMs\n"
            "L1,SW-A,SW-B,40,0.5\nL2,hA0,SW-A,10,0.006\nL3,hB0,SW-B,10,0.006\n")
        spec = load_topology_spec(tmp_path)
        assert {n.name for n in spec.nodes} == {"SW-A", "SW-B", "hA0", "hB0"}
        assert spec.links[0].rate_bps == 40_000_000_000
        assert spec.links[0].delay_ns == 500_000
        assert spec.region_of("SW-A") == "east"
        assert len(spec.hosts()) == 2


class TestValidation:
    def test_valid_passes(self):
        TopologySpec.from_dict(small_spec_dict()).validate()

    @pytest.mark.parametrize("mutate,message", [
        (lambda d: d["links"].append(
            {"a": "hA0", "b": "ghost", "rate": "1G", "delay": "1us"}),
         "unknown endpoint 'ghost'"),
        (lambda d: d["links"].append(dict(d["links"][1])),
         "duplicate link"),
        (lambda d: d["links"].append(
            {"a": "SW-A", "b": "hA0", "rate": "1G", "delay": "1us"}),
         "duplicate link"),  # reversed direction of an existing edge
        (lambda d: d["nodes"].append({"name": "hA0", "kind": "host"}),
         "duplicate node 'hA0'"),
        (lambda d: d["sites"].append({"name": "DC-A"}),
         "duplicate site 'DC-A'"),
        (lambda d: d["links"].__setitem__(
            0, {"a": "SW-A", "b": "SW-B", "rate": 0, "delay": "1us"}),
         "rate must be positive"),
        (lambda d: d["links"].__setitem__(
            0, {"a": "SW-A", "b": "SW-B", "rate": "1G", "delay": -5}),
         "delay must be positive"),
        (lambda d: d["links"].__setitem__(
            0, {"a": "SW-A", "b": "SW-A", "rate": "1G", "delay": "1us"}),
         "joins a node to itself"),
        (lambda d: d["nodes"].append({"name": "x", "kind": "router"}),
         "kind must be 'host' or 'switch'"),
        (lambda d: d["nodes"].append({"name": "x", "site": "DC-Z"}),
         "unknown site 'DC-Z'"),
        (lambda d: d["nodes"].append({"name": "x", "color": "red"}),
         "unknown field"),
        (lambda d: d.__setitem__("nodes", []), "no nodes"),
    ])
    def test_error_matrix(self, mutate, message):
        d = small_spec_dict()
        mutate(d)
        with pytest.raises(TopologySpecError, match=message):
            TopologySpec.from_dict(d)

    def test_missing_rate_and_both_rates(self):
        d = small_spec_dict()
        d["links"][0] = {"a": "SW-A", "b": "SW-B", "delay": "1us"}
        with pytest.raises(TopologySpecError, match="missing 'rate'"):
            TopologySpec.from_dict(d)
        d["links"][0] = {"a": "SW-A", "b": "SW-B", "rate": "1G",
                         "rate_bps": 5, "delay": "1us"}
        with pytest.raises(TopologySpecError, match="not both"):
            TopologySpec.from_dict(d)


class TestRegistry:
    def test_kinds_include_classics_and_fabric(self):
        kinds = topology_kinds()
        for kind in ("clos", "dumbbell", "star", "fabric"):
            assert kind in kinds

    def test_spec_class(self):
        assert spec_class("clos") is ClosSpec
        assert spec_class("fabric") is TopologySpec

    def test_wrong_spec_type_rejected(self):
        sim = Simulator()
        with pytest.raises(TypeError, match="DumbbellSpec"):
            build("dumbbell", sim, queue_factory(), ClosSpec())

    def test_unknown_kind(self):
        with pytest.raises(KeyError, match="unknown topology kind"):
            build("torus", Simulator(), queue_factory())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_topology("clos", ClosSpec, lambda *a: None)

    def test_default_spec(self):
        sim = Simulator()
        d = build("dumbbell", sim, queue_factory())
        assert d.spec if hasattr(d, "spec") else True
        assert len(d.senders) == DumbbellSpec().n_pairs


class TestTopologyNames:
    def test_node_by_name_and_duplicate_rejection(self):
        sim = Simulator()
        handle = build_from_spec(
            sim, queue_factory(), TopologySpec.from_dict(small_spec_dict()))
        assert handle.node("SW-A").name == "SW-A"
        with pytest.raises(KeyError, match="no node named"):
            handle.node("nope")
        from repro.net.topology import Topology

        topo = Topology(sim, queue_factory())
        topo.add_host("dup")
        with pytest.raises(ValueError, match="duplicate node name 'dup'"):
            topo.add_host("dup")


class TestBuildFromSpec:
    def test_lookups_groups_and_salts(self):
        spec = TopologySpec.from_dict(small_spec_dict())
        handle = build_from_spec(Simulator(), queue_factory(), spec)
        assert isinstance(handle, FabricHandle)
        assert len(handle.hosts) == 4
        assert [len(r) for r in handle.racks()] == [2, 2]
        assert handle.rack_of(handle.node("hB0")) == 1
        assert handle.node("SW-A").ecmp_salt == 1
        assert handle.site_of("hA0") == "DC-A"
        assert handle.region_of("hB1") == "west"
        assert [l.label for l in handle.inter_region_links()] == \
            ["SW-A<->SW-B"]
        by_region = handle.hosts_by_region()
        assert sorted(by_region) == ["east", "west"]
        assert [h.name for h in by_region["east"]] == ["hA0", "hA1"]
        groups = handle.topo.node_groups
        assert set(groups["site:DC-A"]) == {"SW-A", "hA0", "hA1"}
        assert set(groups["region:west"]) == {"SW-B", "hB0", "hB1"}
        assert handle.access_rate_bps == 10_000_000_000

    def test_clos_digest_equivalence(self):
        """A Clos expressed as a spec reproduces hand-built audit digests."""
        from repro.audit.config import AuditConfig

        clos_spec = ClosSpec(n_pods=2, aggs_per_pod=2, tors_per_pod=2,
                             hosts_per_tor=4)
        base = ExperimentConfig(
            scheme=SchemeName.FLEXPASS, sim_time_ns=1 * MILLIS,
            size_scale=16.0, clos=clos_spec,
            audit=AuditConfig(digest=True),
        )
        hand = run_experiment(base)
        declared = run_experiment(
            base.with_(topology_spec=clos_to_topology_spec(clos_spec)))
        assert hand.audit is not None and declared.audit is not None
        assert hand.audit.digest.final() == declared.audit.digest.final()
        assert len(hand.records) == len(declared.records)

    def test_clos_parity_of_handles(self):
        clos_spec = ClosSpec()
        sim1, sim2 = Simulator(), Simulator()
        qf = queue_factory()
        hand = build_clos(sim1, qf, clos_spec)
        decl = build_from_spec(sim2, qf, clos_to_topology_spec(clos_spec))
        assert [(n.id, n.name) for n in hand.topo.nodes.values()] == \
            [(n.id, n.name) for n in decl.topo.nodes.values()]
        assert [[h.name for h in r] for r in hand.racks()] == \
            [[h.name for h in r] for r in decl.racks()]
        assert [p.name for p in hand.tor_uplinks()] == \
            [p.name for p in decl.tor_uplinks()]


class TestFaultsByOntologyName:
    def make_cfg(self, faults=None, **overrides):
        spec = TopologySpec.from_dict(small_spec_dict())
        return regional_fabric_config(
            spec, load=0.4, sim_time_ns=2 * MILLIS, seed=5,
            size_scale=32.0, locality_intra=0.5, faults=faults, **overrides)

    def test_named_backbone_link_kill_and_reconverge(self):
        plan = FaultPlan(failures=(LinkFailureSpec(
            a="SW-A", b="SW-B", down_ns=MILLIS // 2, up_ns=MILLIS),))
        res = run_experiment(self.make_cfg(faults=plan))
        fc = res.fault_counters
        assert fc.link_failures == 1
        assert fc.link_restores == 1
        assert fc.reroutes == 2

    def test_site_failure_spec_expands_incident_links(self):
        spec = TopologySpec.from_dict(small_spec_dict())
        handle = build_from_spec(Simulator(), queue_factory(), spec)
        events = SiteFailureSpec("DC-A", down_ns=10, up_ns=20).events(
            handle.topo)
        downs = {(e.a, e.b) for e in events if type(e).__name__ ==
                 "LinkDownEvent"}
        # every link incident to a DC-A node: the WAN link + both host links
        assert downs == {("SW-A", "SW-B"), ("SW-A", "hA0"), ("SW-A", "hA1")}
        ups = [e for e in events if type(e).__name__ == "LinkUpEvent"]
        assert len(ups) == len(downs)

    def test_site_failure_runs_end_to_end(self):
        plan = FaultPlan(site_failures=(SiteFailureSpec(
            "DC-B", down_ns=MILLIS // 2, up_ns=MILLIS),))
        res = run_experiment(self.make_cfg(faults=plan))
        assert res.fault_counters.link_failures == 3
        assert res.fault_counters.link_restores == 3

    def test_unknown_target_fails_at_setup(self):
        plan = FaultPlan(site_failures=(SiteFailureSpec(
            "DC-MARS", down_ns=10),))
        with pytest.raises(ValueError, match="neither a node nor"):
            run_experiment(self.make_cfg(faults=plan))


class TestRegionalScenario:
    def test_locality_matrix_biases_traffic(self):
        from repro.experiments.runner import build_flow_specs
        from repro.sim.rng import RngRegistry

        spec = TopologySpec.from_dict(small_spec_dict())
        intra_counts = {}
        for frac in (0.1, 0.9):
            cfg = regional_fabric_config(spec, load=0.5,
                                         sim_time_ns=5 * MILLIS, seed=2,
                                         size_scale=32.0,
                                         locality_intra=frac)
            handle = build_topology(
                Simulator(), make_scheme_setup(cfg).queue_factory, cfg)
            specs, _ = build_flow_specs(cfg, handle, RngRegistry(cfg.seed))
            region = {h.name: spec.region_of(h.name) for h in handle.hosts}
            intra = sum(1 for s in specs
                        if region[s.src.name] == region[s.dst.name])
            intra_counts[frac] = intra / len(specs)
        assert intra_counts[0.9] > 0.75 > 0.25 > intra_counts[0.1]

    def test_build_topology_without_spec_is_clos(self):
        cfg = ExperimentConfig()
        handle = build_topology(
            Simulator(), make_scheme_setup(cfg).queue_factory, cfg)
        from repro.net.topology import Clos

        assert isinstance(handle, Clos)

    def test_example_yaml_validates_and_runs(self):
        import pathlib

        path = (pathlib.Path(__file__).resolve().parents[1] / "examples" /
                "regional_fabric.yaml")
        spec = load_topology_spec(path)
        assert len(spec.inter_region_links()) == 2
        cfg = regional_fabric_config(spec, load=0.3, sim_time_ns=MILLIS,
                                     size_scale=32.0, seed=9)
        res = run_experiment(cfg)
        assert res.completed > 0
        assert not res.aborted


class TestNetApiSurface:
    def test_lazy_fabric_names_via_repro_net(self):
        import repro.net as net

        assert net.TopologySpec is TopologySpec
        assert net.build_from_spec is build_from_spec
        assert "fabric" in dir(net)
        assert net.routing.edge_key(2, 1) == (1, 2)

    def test_all_names_resolve(self):
        import repro.net as net

        for name in net.__all__:
            assert getattr(net, name) is not None
