"""Unit tests for FCT summaries, throughput monitoring, queue sampling."""

import math

import pytest

from repro.metrics.fct import FctSummary, FlowRecord, completion_ratio, summarize
from repro.metrics.queueing import QueueSampler
from repro.metrics.summary import format_table
from repro.metrics.throughput import ThroughputMonitor, starvation_fraction
from repro.net.packet import Dscp, Packet, PacketKind
from repro.net.queues import PacketQueue, QueueConfig
from repro.net.topology import DumbbellSpec, build_dumbbell
from repro.sim.engine import Simulator
from repro.sim.units import KB, MILLIS
from repro.transports.base import FlowSpec, FlowStats

from tests.test_net_port_topology import single_queue_factory


def rec(fid=1, size=10_000, fct_ms=1.0, group="legacy", role="bg", **kw):
    return FlowRecord(
        flow_id=fid, scheme="dctcp", group=group, role=role,
        size_bytes=size, start_ns=0,
        fct_ns=int(fct_ms * 1e6) if fct_ms is not None else -1, **kw,
    )


class TestSummarize:
    def test_basic_stats(self):
        records = [rec(i, fct_ms=float(i + 1)) for i in range(100)]
        s = summarize(records)
        assert s.count == 100
        assert s.avg_ms == pytest.approx(50.5)
        assert s.p99_ms == pytest.approx(99.01, rel=0.01)
        assert s.max_ms == 100.0

    def test_small_cutoff_filters(self):
        records = [rec(1, size=50 * KB, fct_ms=1.0),
                   rec(2, size=200 * KB, fct_ms=9.0)]
        s = summarize(records, small_cutoff_bytes=100 * KB)
        assert s.count == 1
        assert s.avg_ms == 1.0

    def test_group_and_role_filters(self):
        records = [rec(1, group="new", fct_ms=1.0),
                   rec(2, group="legacy", fct_ms=2.0),
                   rec(3, group="new", role="fg", fct_ms=3.0)]
        assert summarize(records, group="new").count == 2
        assert summarize(records, group="new", role="fg").count == 1
        assert summarize(records, group="legacy").avg_ms == 2.0

    def test_censored_flows_excluded(self):
        records = [rec(1, fct_ms=1.0), rec(2, fct_ms=None)]
        s = summarize(records)
        assert s.count == 1
        assert s.censored == 1
        assert completion_ratio(records) == 0.5

    def test_censoring_bias_is_visible(self):
        """Regression: a scheme that strands its slow flows used to *look*
        faster — the unfinished flows silently vanished from the average.
        The censored count is what exposes the comparison as invalid."""
        honest = [rec(i, fct_ms=1.0) for i in range(8)]
        honest += [rec(10 + i, fct_ms=9.0) for i in range(2)]
        stranding = [rec(i, fct_ms=1.0) for i in range(8)]
        stranding += [rec(10 + i, fct_ms=None) for i in range(2)]
        s_honest = summarize(honest)
        s_stranding = summarize(stranding)
        # The naive average favours the stranding scheme...
        assert s_stranding.avg_ms < s_honest.avg_ms
        # ...and the censored counts are the tell.
        assert s_honest.censored == 0
        assert s_stranding.censored == 2

    def test_censored_respects_filters(self):
        records = [rec(1, group="new", fct_ms=None),
                   rec(2, group="legacy", fct_ms=None),
                   rec(3, group="new", fct_ms=1.0),
                   rec(4, group="legacy", size=500 * KB, fct_ms=None)]
        assert summarize(records, group="new").censored == 1
        assert summarize(records, group="legacy").censored == 2
        # The big stranded flow is outside the small-flow cut.
        assert summarize(records, small_cutoff_bytes=100 * KB).censored == 2

    def test_empty_summary_censored_defaults_zero(self):
        assert summarize([]).censored == 0
        assert FctSummary.empty().censored == 0

    def test_empty_is_nan(self):
        s = summarize([])
        assert s.count == 0
        assert math.isnan(s.avg_ms)

    def test_from_flow_requires_stats(self):
        sim = Simulator()
        db = build_dumbbell(sim, single_queue_factory, DumbbellSpec(n_pairs=1))
        spec = FlowSpec(9, db.senders[0], db.receivers[0], 5000, 0,
                        scheme="x", group="new")
        stats = FlowStats(start_ns=10, complete_ns=1010, timeouts=2)
        r = FlowRecord.from_flow(spec, stats)
        assert r.fct_ns == 1000
        assert r.timeouts == 2
        assert r.completed
        censored = FlowRecord.from_flow(spec, FlowStats(start_ns=10))
        assert not censored.completed


class TestThroughputMonitor:
    def _port_with_traffic(self):
        sim = Simulator()
        db = build_dumbbell(sim, single_queue_factory, DumbbellSpec(n_pairs=1))

        def classify(pkt):
            return "a" if pkt.flow_id == 1 else "b"

        mon = ThroughputMonitor(db.bottleneck, classify, bin_ns=1 * MILLIS)
        return sim, db, mon

    def test_bins_accumulate_bytes(self):
        sim, db, mon = self._port_with_traffic()
        for i in range(10):
            db.senders[0].send(Packet(PacketKind.DATA, 1, db.senders[0].id,
                                      db.receivers[0].id, 1000, dscp=Dscp.LEGACY))
        sim.run()
        assert mon.total_bytes("a") == 10_000

    def test_series_length_matches_horizon(self):
        sim, db, mon = self._port_with_traffic()
        db.senders[0].send(Packet(PacketKind.DATA, 1, db.senders[0].id,
                                  db.receivers[0].id, 1000, dscp=Dscp.LEGACY))
        sim.run()
        series = mon.series_gbps("a", 5 * MILLIS)
        assert len(series) == 5
        assert series[0] > 0
        assert all(v == 0 for v in series[1:])

    def test_classifier_none_ignored(self):
        sim = Simulator()
        db = build_dumbbell(sim, single_queue_factory, DumbbellSpec(n_pairs=1))
        mon = ThroughputMonitor(db.bottleneck, lambda pkt: None)
        db.senders[0].send(Packet(PacketKind.DATA, 1, db.senders[0].id,
                                  db.receivers[0].id, 1000, dscp=Dscp.LEGACY))
        sim.run()
        assert mon.categories() == []

    def test_invalid_bin(self):
        sim = Simulator()
        db = build_dumbbell(sim, single_queue_factory, DumbbellSpec(n_pairs=1))
        with pytest.raises(ValueError):
            ThroughputMonitor(db.bottleneck, lambda p: "x", bin_ns=0)


class TestStarvationFraction:
    def test_all_above_threshold(self):
        assert starvation_fraction([5.0] * 10, 10.0) == 0.0

    def test_all_below(self):
        assert starvation_fraction([1.0] * 10, 10.0) == 1.0

    def test_active_window_clipping(self):
        # idle head/tail bins are not starvation
        series = [0, 0, 5.0, 1.0, 5.0, 0, 0]
        assert starvation_fraction(series, 10.0) == pytest.approx(1 / 3)

    def test_without_clipping(self):
        series = [0, 0, 5.0, 1.0]
        assert starvation_fraction(series, 10.0, active_only=False) == 0.75

    def test_empty(self):
        assert starvation_fraction([], 10.0) == 0.0

    def test_all_zero_is_fully_starved(self):
        assert starvation_fraction([0.0] * 5, 10.0) == 1.0


class TestQueueSampler:
    def test_samples_on_period(self):
        sim = Simulator()
        q = PacketQueue(QueueConfig())
        sampler = QueueSampler(sim, q, period_ns=1 * MILLIS, until_ns=5 * MILLIS)
        q.push(Packet(PacketKind.DATA, 1, 0, 1, 3000, dscp=Dscp.LEGACY))
        sim.run(until=10 * MILLIS)
        assert len(sampler.samples_bytes) == 5
        assert sampler.avg_kb() == pytest.approx(3.0)
        assert sampler.max_kb() == pytest.approx(3.0)

    def test_red_bytes_tracked(self):
        from repro.net.packet import Color

        sim = Simulator()
        q = PacketQueue(QueueConfig())
        sampler = QueueSampler(sim, q, period_ns=MILLIS, until_ns=2 * MILLIS)
        q.push(Packet(PacketKind.DATA, 1, 0, 1, 2000, dscp=Dscp.LEGACY,
                      color=Color.RED))
        sim.run(until=5 * MILLIS)
        assert sampler.avg_red_kb() == pytest.approx(2.0)
        assert sampler.p90_red_kb() == pytest.approx(2.0)

    def test_invalid_period(self):
        sim = Simulator()
        q = PacketQueue(QueueConfig())
        with pytest.raises(ValueError):
            QueueSampler(sim, q, period_ns=0)


class TestFormatTable:
    def test_alignment_and_floats(self):
        out = format_table(("name", "value"), [("a", 1.23456), ("long-name", 7)])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in out
        assert "long-name" in out

    def test_empty_rows(self):
        out = format_table(("h1",), [])
        assert "h1" in out
