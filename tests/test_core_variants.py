"""Tests for the §4.3 design-alternative variants of FlexPass."""

from dataclasses import replace

from repro.core.flexpass import FlexPassParams, FlexPassReceiver, FlexPassSender
from repro.core.variants import (
    Rc3SplitReceiver,
    Rc3SplitSender,
    alt_queue_params,
)
from repro.experiments.config import QueueSettings
from repro.experiments.scenarios import flexpass_queue_factory
from repro.net.packet import Color, Dscp
from repro.net.topology import DumbbellSpec, build_dumbbell
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MB, MILLIS
from repro.transports.base import FlowSpec, FlowStats
from repro.transports.credit_feedback import CREDIT_PER_DATA

from tests.util import Completions


def fp_params(**kw):
    return FlexPassParams(
        max_credit_rate_bps=10 * GBPS * 0.5 * CREDIT_PER_DATA, **kw
    )


def run_flow(sender_cls, receiver_cls, params, size=4 * MB, until_ms=60):
    sim = Simulator()
    db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings(wq=0.5)),
                        DumbbellSpec(n_pairs=1))
    done = Completions()
    spec = FlowSpec(1, db.senders[0], db.receivers[0], size, 0,
                    scheme="x", group="new")
    stats = FlowStats()
    receiver_cls(sim, spec, stats, params, on_complete=done)
    sender = sender_cls(sim, spec, stats, params)
    sim.at(0, sender.start)
    sim.run(until=until_ms * MILLIS)
    return stats, done


class TestRc3Splitting:
    def test_flow_completes(self):
        params = fp_params(enable_proactive_rtx=False)
        stats, done = run_flow(Rc3SplitSender, Rc3SplitReceiver, params)
        assert done.flow_ids == {1}
        assert stats.delivered_bytes == 4 * MB

    def test_reactive_sends_from_the_back(self):
        """RC3 splitting: the reactive loop transmits the tail of the flow
        first — visible as a large reorder buffer at the receiver."""
        params = fp_params(enable_proactive_rtx=False)
        rc3_stats, _ = run_flow(Rc3SplitSender, Rc3SplitReceiver, params)
        fp_stats, _ = run_flow(FlexPassSender, FlexPassReceiver, fp_params())
        assert rc3_stats.max_reorder_bytes > 4 * fp_stats.max_reorder_bytes

    def test_no_duplicate_transmissions_by_construction(self):
        """The two RC3 loops never overlap, so reassembly sees no dups."""
        params = fp_params(enable_proactive_rtx=False)
        stats, _ = run_flow(Rc3SplitSender, Rc3SplitReceiver, params)
        # On a clean link with no drops there is nothing to duplicate.
        assert stats.duplicate_bytes == 0


class TestAlternativeQueueing:
    def test_params_redirect_reactive_to_legacy_queue(self):
        params = alt_queue_params(fp_params())
        assert params.reactive_data_dscp == Dscp.LEGACY
        assert params.reactive_data_color == Color.GREEN
        # proactive mapping untouched
        assert params.proactive_data_dscp == Dscp.PROACTIVE_DATA

    def test_flow_completes_through_legacy_queue(self):
        params = alt_queue_params(fp_params())
        stats, done = run_flow(FlexPassSender, FlexPassReceiver, params)
        assert done.flow_ids == {1}
        assert stats.delivered_bytes == 4 * MB
        assert stats.reactive_bytes > 0  # reactive path actually used


class TestAblationFlags:
    def test_proactive_only_mode(self):
        params = fp_params(enable_reactive=False)
        stats, done = run_flow(FlexPassSender, FlexPassReceiver, params)
        assert done.flow_ids == {1}
        assert stats.reactive_bytes == 0
        assert stats.proactive_bytes == 4 * MB

    def test_proactive_only_is_limited_to_wq(self):
        params = fp_params(enable_reactive=False)
        stats, done = run_flow(FlexPassSender, FlexPassReceiver, params)
        both, done2 = run_flow(FlexPassSender, FlexPassReceiver, fp_params())
        # 4 MB at 5G ~ 6.4ms vs ~3.4ms with both sub-flows
        assert done.fct_ms(1) > done2.fct_ms(1) * 1.5

    def test_no_proactive_rtx_flag(self):
        params = fp_params(enable_proactive_rtx=False)
        stats, done = run_flow(FlexPassSender, FlexPassReceiver, params)
        assert done.flow_ids == {1}
        assert stats.proactive_retransmissions == 0
