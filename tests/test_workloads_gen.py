"""Tests for the streaming traffic-generation suite (repro.workloads.gen).

Covers the generator protocol (constant memory, seed stability, flow-id
strides), composition (merge isolation), the legacy-adapter
stream-identity contract (pre-suite digest re-pin), the parametric
distributions/arrival processes/locality matrices, coflow child release
through a real experiment, spec-string parsing, and cache keying of the
``TrafficConfig`` block. See DESIGN.md §6k.
"""

import itertools
import tracemalloc

import numpy as np
import pytest

from repro.experiments.cache import config_key
from repro.experiments.runner import run_experiment
from repro.experiments.sweep import default_sweep_config
from repro.sim.rng import RngRegistry
from repro.sim.units import GBPS, KB, MILLIS
from repro.workloads.distributions import (
    WEBSEARCH,
    BimodalSizes,
    BoundedParetoSizes,
    LognormalSizes,
)
from repro.workloads.gen import (
    SOURCE_ID_STRIDE,
    CoflowSource,
    GroupedPairs,
    IncastSource,
    MatrixPairs,
    OnOffArrivals,
    OpenLoopSource,
    ParetoArrivals,
    PoissonArrivals,
    SourceConfig,
    TrafficConfig,
    UniformPairs,
    build_sources,
    merge_sources,
    parse_arrivals,
    parse_locality,
    parse_sizes,
    stream_digest,
    stub_groups,
    stub_hosts,
)

HORIZON = 1 << 62  # effectively unbounded; cap streams with islice


def _bg_source(name="bg", rate=0.001, sim_time_ns=HORIZON, first_flow_id=1):
    return OpenLoopSource(name, UniformPairs(stub_hosts(8)), WEBSEARCH,
                          PoissonArrivals(rate), sim_time_ns,
                          size_scale=8.0, first_flow_id=first_flow_id)


class TestArrivalProcesses:
    def test_poisson_mean_gap(self):
        assert PoissonArrivals(0.25).mean_gap_ns() == 4.0

    def test_invalid_rate_rejected(self):
        for bad in (0.0, -1.0):
            with pytest.raises(ValueError):
                PoissonArrivals(bad)

    def test_pareto_preserves_long_run_rate(self):
        # alpha=2.5 has finite variance, so the sample mean converges.
        proc = ParetoArrivals(0.01, alpha=2.5)
        rng = np.random.default_rng(3)
        gaps = list(itertools.islice(proc.gaps(rng), 200_000))
        assert np.mean(gaps) == pytest.approx(100.0, rel=0.05)

    def test_pareto_needs_heavy_tail_exponent(self):
        with pytest.raises(ValueError, match="alpha"):
            ParetoArrivals(0.01, alpha=1.0)

    def test_pareto_is_burstier_than_poisson(self):
        rng = np.random.default_rng(5)
        heavy = list(itertools.islice(
            ParetoArrivals(0.01, alpha=1.5).gaps(rng), 50_000))
        rng = np.random.default_rng(5)
        memless = list(itertools.islice(
            PoissonArrivals(0.01).gaps(rng), 50_000))
        assert np.std(heavy) > 2.0 * np.std(memless)

    def test_onoff_preserves_long_run_rate(self):
        # Rare OFF-period gaps dominate the variance, so the sample mean
        # converges slowly; 10% still separates "rate preserved" from any
        # duty-cycle bookkeeping error (those are off by 1/duty = 5x).
        proc = OnOffArrivals(0.01, on_ns=5_000.0, off_ns=20_000.0)
        rng = np.random.default_rng(7)
        gaps = list(itertools.islice(proc.gaps(rng), 400_000))
        assert np.mean(gaps) == pytest.approx(100.0, rel=0.1)

    def test_onoff_burst_rate_scales_with_duty_cycle(self):
        proc = OnOffArrivals(0.01, on_ns=5_000.0, off_ns=20_000.0)
        assert proc.burst_rate_per_ns == pytest.approx(0.05)  # duty 1/5

    def test_onoff_validation(self):
        with pytest.raises(ValueError):
            OnOffArrivals(0.01, on_ns=0.0, off_ns=10.0)
        with pytest.raises(ValueError):
            OnOffArrivals(0.01, on_ns=10.0, off_ns=-1.0)


class TestPairPickers:
    def test_uniform_never_self_pairs(self):
        picker = UniformPairs(stub_hosts(4))
        rng = np.random.default_rng(1)
        for _ in range(2_000):
            src, dst = picker.pick(rng)
            assert src.id != dst.id

    def test_grouped_intra_fraction_honored(self):
        groups = stub_groups(16, 4)
        picker = GroupedPairs(groups, 0.75)
        gof = {h.id: gi for gi, g in enumerate(groups) for h in g}
        rng = np.random.default_rng(2)
        intra = sum(gof[s.id] == gof[d.id]
                    for s, d in (picker.pick(rng) for _ in range(20_000)))
        assert intra / 20_000 == pytest.approx(0.75, abs=0.02)

    def test_matrix_row_frequencies_match(self):
        groups = stub_groups(12, 3)
        matrix = [[0.6, 0.3, 0.1],
                  [0.2, 0.5, 0.3],
                  [0.1, 0.1, 0.8]]
        picker = MatrixPairs(groups, matrix)
        gof = {h.id: gi for gi, g in enumerate(groups) for h in g}
        rng = np.random.default_rng(3)
        counts = np.zeros((3, 3))
        n = 60_000
        for _ in range(n):
            s, d = picker.pick(rng)
            counts[gof[s.id], gof[d.id]] += 1
        freqs = counts / counts.sum(axis=1, keepdims=True)
        assert np.allclose(freqs, matrix, atol=0.02)

    def test_matrix_validation(self):
        groups = stub_groups(4, 2)
        with pytest.raises(ValueError, match="sums to"):
            MatrixPairs(groups, [[0.5, 0.4], [0.5, 0.5]])
        with pytest.raises(ValueError, match="negative"):
            MatrixPairs(groups, [[1.5, -0.5], [0.5, 0.5]])
        with pytest.raises(ValueError, match="must be 2x2"):
            MatrixPairs(groups, [[1.0]])

    def test_matrix_singleton_diagonal_leaves_group(self):
        # Group 0 has one host; a diagonal pick cannot self-pair and must
        # fall through to the next group cyclically.
        groups = [stub_hosts(3)[:1], stub_hosts(3)[1:]]
        picker = MatrixPairs(groups, [[1.0, 0.0], [0.0, 1.0]])
        rng = np.random.default_rng(4)
        for _ in range(500):
            src, dst = picker.pick(rng)
            assert src.id != dst.id

    def test_intra_matrix_helper_is_row_stochastic(self):
        m = MatrixPairs.intra_matrix(4, 0.7)
        for i, row in enumerate(m):
            assert sum(row) == pytest.approx(1.0)
            assert row[i] == pytest.approx(0.7)
        assert MatrixPairs.intra_matrix(1, 0.3) == [[1.0]]

    def test_grouped_equals_matrix_special_case_statistically(self):
        """GroupedPairs is the diagonal-intra matrix with the remainder
        spread by group size — equal-size groups make that uniform, so
        the two pickers must agree in distribution."""
        groups = stub_groups(16, 4)
        gof = {h.id: gi for gi, g in enumerate(groups) for h in g}

        def intra_rate(picker, seed):
            rng = np.random.default_rng(seed)
            picks = (picker.pick(rng) for _ in range(30_000))
            return sum(gof[s.id] == gof[d.id] for s, d in picks) / 30_000

        g = intra_rate(GroupedPairs(groups, 0.6), 9)
        m = intra_rate(MatrixPairs(groups, MatrixPairs.intra_matrix(4, 0.6)),
                       10)
        assert g == pytest.approx(m, abs=0.02)


class TestStreamingProtocol:
    def test_seed_stable_digest(self):
        def digest(seed):
            stream = merge_sources([_bg_source()], RngRegistry(seed))
            return stream_digest(itertools.islice(stream, 5_000))

        assert digest(11) == digest(11)
        assert digest(11) != digest(12)

    def test_starts_nondecreasing_across_composition(self):
        sources = [_bg_source("a", 0.001),
                   _bg_source("b", 0.003, first_flow_id=SOURCE_ID_STRIDE + 1)]
        stream = merge_sources(sources, RngRegistry(1))
        starts = [t.start_ns for t in itertools.islice(stream, 3_000)]
        assert starts == sorted(starts)

    def test_merge_isolation(self):
        """Composing sources must not perturb any one source's stream:
        each draws from its own named RNG stream."""
        def specs_of(name, composed_with=None):
            sources = [_bg_source(name, 0.001)]
            if composed_with:
                sources.append(_bg_source(
                    composed_with, 0.005,
                    first_flow_id=SOURCE_ID_STRIDE + 1))
            stream = merge_sources(sources, RngRegistry(3))
            firsts = (t for t in stream if t.flow_id < SOURCE_ID_STRIDE)
            return [(t.flow_id, t.src.id, t.dst.id, t.size_bytes, t.start_ns)
                    for t in itertools.islice(firsts, 2_000)]

        assert specs_of("a") == specs_of("a", composed_with="noise")

    def test_duplicate_source_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            merge_sources([_bg_source("x"), _bg_source("x", 0.002)],
                          RngRegistry(1))

    def test_flow_id_strides_disjoint(self):
        traffic = TrafficConfig(sources=(
            SourceConfig(name="bg", load_share=0.8),
            SourceConfig(name="fg", kind="incast", load_share=0.2),
        ))
        sources = build_sources(
            traffic, stub_hosts(16), stub_groups(16, 4), load=0.6,
            rate_bps=10 * GBPS, sim_time_ns=HORIZON, size_scale=8.0)
        stream = merge_sources(sources, RngRegistry(5))
        ids_by_source = {}
        for t in itertools.islice(stream, 4_000):
            ids_by_source.setdefault(t.flow_id // SOURCE_ID_STRIDE,
                                     []).append(t.flow_id)
        assert set(ids_by_source) == {0, 1}
        assert min(ids_by_source[0]) == 1
        assert min(ids_by_source[1]) == SOURCE_ID_STRIDE + 1

    def test_constant_memory_at_scale(self):
        """200k merged flows must stream without materializing: traced
        allocation peak stays a few MB, not O(flows)."""
        sources = [_bg_source("a", 0.002),
                   _bg_source("b", 0.001, first_flow_id=SOURCE_ID_STRIDE + 1)]
        stream = merge_sources(sources, RngRegistry(9))
        tracemalloc.start()
        digest = stream_digest(itertools.islice(stream, 200_000))
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert digest.flows == 200_000
        assert peak < 5 * 1024 * 1024

    def test_digest_counts_children(self):
        hosts = stub_hosts(6)
        src = CoflowSource("jobs", hosts, WEBSEARCH, PoissonArrivals(0.0005),
                           fanout=3, request_bytes=2 * KB,
                           sim_time_ns=HORIZON, size_scale=64.0)
        specs = list(itertools.islice(
            src.flows(RngRegistry(2).stream("t")), 30))
        d = stream_digest(specs)
        assert d.flows == 60  # 30 requests + 30 dependent replies
        assert d.total_bytes == sum(
            t.size_bytes + sum(c.size_bytes for c in t.children)
            for t in specs)


class TestCoflowSource:
    def _source(self, think_ns=500):
        return CoflowSource("jobs", stub_hosts(8), WEBSEARCH,
                            PoissonArrivals(0.0005), fanout=3,
                            request_bytes=2 * KB, sim_time_ns=HORIZON,
                            size_scale=64.0, think_ns=think_ns)

    def test_request_reply_structure(self):
        src = self._source()
        for t in itertools.islice(src.flows(RngRegistry(1).stream("t")), 50):
            assert t.role == "req"
            assert t.size_bytes == 2 * KB
            assert len(t.children) == 1
            reply = t.children[0]
            assert reply.role == "reply"
            assert reply.flow_id == t.flow_id + 1
            # Reply start is RELATIVE (think time); it travels the
            # reverse direction of its request.
            assert reply.start_ns == 500
            assert (reply.src.id, reply.dst.id) == (t.dst.id, t.src.id)
            assert t.src.id != t.dst.id

    def test_workers_distinct_per_job(self):
        src = self._source()
        stream = src.flows(RngRegistry(4).stream("t"))
        jobs = {}
        for t in itertools.islice(stream, 90):
            jobs.setdefault(t.start_ns, []).append(t)
        for batch in jobs.values():
            aggs = {t.src.id for t in batch}
            assert len(aggs) == 1
            workers = [t.dst.id for t in batch]
            assert len(set(workers)) == len(workers)

    def test_bytes_per_job_uses_realized_reply_mean(self):
        src = self._source()
        expected = 3 * (2 * KB + WEBSEARCH.realized_mean_bytes(64.0))
        assert src.bytes_per_job() == pytest.approx(expected)

    def test_validation(self):
        hosts = stub_hosts(4)
        with pytest.raises(ValueError, match="fanout"):
            CoflowSource("j", hosts, WEBSEARCH, PoissonArrivals(0.001),
                         fanout=4, request_bytes=KB, sim_time_ns=HORIZON)
        with pytest.raises(ValueError, match="at least 2 hosts"):
            CoflowSource("j", hosts[:1], WEBSEARCH, PoissonArrivals(0.001),
                         fanout=1, request_bytes=KB, sim_time_ns=HORIZON)
        with pytest.raises(ValueError, match="think_ns"):
            CoflowSource("j", hosts, WEBSEARCH, PoissonArrivals(0.001),
                         fanout=2, request_bytes=KB, sim_time_ns=HORIZON,
                         think_ns=-1)

    def test_children_released_in_real_experiment(self):
        """End-to-end: replies must be launched by the flow-finish
        callback and appear in the experiment's records."""
        cfg = default_sweep_config(
            sim_time_ns=2 * MILLIS,
            deployment=0.0,
            traffic=TrafficConfig(sources=(
                SourceConfig(name="bg", load_share=0.7),
                SourceConfig(name="jobs", kind="coflow", load_share=0.3,
                             fanout=3),
            )),
        )
        result = run_experiment(cfg)
        roles = {}
        for r in result.records:
            roles[r.role] = roles.get(r.role, 0) + 1
        assert roles.get("req", 0) > 0
        assert roles.get("reply", 0) > 0
        # Every reply observed came from a completed request.
        completed_reqs = sum(1 for r in result.records
                             if r.role == "req" and r.completed)
        assert roles["reply"] <= completed_reqs


class TestParsers:
    def test_parse_sizes_variants(self):
        assert parse_sizes("empirical:datamining").name == "datamining"
        assert parse_sizes("datamining").name == "datamining"
        assert parse_sizes("empirical", "hadoop").name == "hadoop"
        assert isinstance(
            parse_sizes("lognormal:mean_kb=64,sigma=1.5"), LognormalSizes)
        assert isinstance(
            parse_sizes("pareto:min_kb=2,alpha=1.3,max_mb=8"),
            BoundedParetoSizes)
        assert isinstance(
            parse_sizes("bimodal:small_kb=16,large_mb=4,large_frac=0.2"),
            BimodalSizes)

    def test_parse_sizes_errors(self):
        with pytest.raises(ValueError, match="unknown"):
            parse_sizes("weibull:k=2")
        with pytest.raises(ValueError, match="unknown"):
            parse_sizes("lognormal:mean_kb=64,bogus=1")

    def test_parse_arrivals_variants(self):
        assert isinstance(parse_arrivals("poisson", 0.01), PoissonArrivals)
        p = parse_arrivals("pareto:alpha=1.7", 0.01)
        assert isinstance(p, ParetoArrivals) and p.alpha == 1.7
        o = parse_arrivals("onoff:on_us=50,off_us=200", 0.01)
        assert isinstance(o, OnOffArrivals)
        assert o.on_ns == 50_000.0 and o.off_ns == 200_000.0
        assert o.rate_per_ns == 0.01

    def test_parse_locality_variants(self):
        hosts = stub_hosts(12)
        groups = stub_groups(12, 3)
        assert isinstance(parse_locality("uniform", hosts, groups),
                          UniformPairs)
        g = parse_locality("grouped:intra=0.8", hosts, groups)
        assert isinstance(g, GroupedPairs) and g.intra_fraction == 0.8
        m = parse_locality("matrix:intra=0.5", hosts, groups)
        assert isinstance(m, MatrixPairs)
        assert m.matrix[0][0] == pytest.approx(0.5)

    def test_build_sources_validation(self):
        hosts, groups = stub_hosts(8), stub_groups(8, 2)

        def build(traffic, n_hosts=8):
            return build_sources(
                traffic, hosts[:n_hosts], groups, load=0.5,
                rate_bps=10 * GBPS, sim_time_ns=MILLIS, size_scale=8.0)

        with pytest.raises(ValueError, match="load_share"):
            build(TrafficConfig(sources=(SourceConfig(load_share=0.0),)))
        with pytest.raises(ValueError, match="unknown kind"):
            build(TrafficConfig(sources=(SourceConfig(kind="closed"),)))
        with pytest.raises(ValueError, match="at least one source"):
            build(TrafficConfig(sources=()))

    def test_build_sources_rate_targets_realized_load(self):
        """An open source's λ x realized mean must equal its share of the
        offered byte rate — the same invariant the adapters now obey."""
        traffic = TrafficConfig(sources=(SourceConfig(load_share=1.0),))
        src, = build_sources(
            traffic, stub_hosts(8), stub_groups(8, 2), load=0.5,
            rate_bps=10 * GBPS, sim_time_ns=MILLIS, size_scale=8.0,
            default_workload="websearch")
        offered = 0.5 * 8 * 10 * GBPS / 8.0 / 1e9
        realized = WEBSEARCH.realized_mean_bytes(8.0)
        assert src.arrivals.rate_per_ns * realized == pytest.approx(offered)


class TestTrafficConfigCacheKey:
    def test_traffic_block_keys_the_cache(self):
        base = default_sweep_config()
        with_traffic = default_sweep_config(
            traffic=TrafficConfig(sources=(SourceConfig(),)))
        variant = default_sweep_config(
            traffic=TrafficConfig(sources=(
                SourceConfig(arrivals="onoff:on_us=50,off_us=200"),)))
        keys = {config_key(base), config_key(with_traffic),
                config_key(variant)}
        assert len(keys) == 3
        assert config_key(with_traffic) == config_key(
            default_sweep_config(
                traffic=TrafficConfig(sources=(SourceConfig(),))))


class TestAdapterStreamIdentity:
    """The legacy generators are now thin adapters over gen.*: with the
    pre-fix analytic λ pinned back in, they must reproduce the exact
    pre-suite flow streams (digests captured before the refactor).

    The offered-load fix intentionally changed λ, so the *shipped*
    digests differ — these pins prove the only behavioral delta is that
    one documented rate correction. See DESIGN.md §6k.
    """

    # (config cell, flow count, sha256) captured at the pre-refactor
    # commit with the digest recipe in _digest below.
    PINS = {
        ("dctcp", "dumbbell"):
            (123, "c88de0d5dbe1ba2bf63a070236bcd854"
                  "583cae9e3f0384ee5f7b56f583644a0a"),
        ("flexpass", "clos"):
            (482, "e7bbfc1067bd151ec999e7ca437182fb"
                  "8eb6e06f81c0b6411ac822d7c55cdbe7"),
        ("ly", "incast"):
            (537, "b2e560f21ca2fd6f59561df3874e9d80"
                  "02c0f9e50fea2c98173917b8e74f73f4"),
    }
    REGIONAL_PIN = (910, "0d1505277469f2e2913bccf459f0f380"
                         "c69b03b89e37c9e4b44e1145ebb27b11")

    @pytest.fixture
    def analytic_lambda(self, monkeypatch):
        from repro.workloads.arrivals import PoissonTraffic

        def old_lambda(self):
            mean_bits = self.cdf.mean_bytes(self.size_scale) * 8.0
            offered_bps = self.load * len(self.hosts) * self.rate_bps
            return offered_bps / mean_bits / 1e9

        monkeypatch.setattr(PoissonTraffic, "arrival_rate_per_ns",
                            old_lambda)

    @staticmethod
    def _digest(cfg):
        import hashlib

        from repro.experiments.runner import build_flow_specs, build_topology
        from repro.experiments.scenarios import make_scheme_setup
        from repro.sim.engine import make_simulator

        sim = make_simulator()
        setup = make_scheme_setup(cfg)
        clos = build_topology(sim, setup.queue_factory, cfg)
        specs, _ = build_flow_specs(cfg, clos, RngRegistry(cfg.seed))
        h = hashlib.sha256()
        for s in specs:
            h.update(f"{s.flow_id},{s.src.id},{s.dst.id},{s.size_bytes},"
                     f"{s.start_ns},{s.scheme},{s.group},{s.role};".encode())
        return len(specs), h.hexdigest()

    @pytest.mark.parametrize("scheme,topo", sorted(PINS))
    def test_matrix_cells_reproduce(self, analytic_lambda, scheme, topo):
        from repro.audit.matrix import matrix_config

        cfg = matrix_config(scheme, topo, sim_time_ns=2_000_000)
        assert self._digest(cfg) == self.PINS[(scheme, topo)]

    def test_regional_grouped_cell_reproduces(self, analytic_lambda):
        from pathlib import Path

        from repro.experiments.scenarios import regional_fabric_config

        yaml_path = Path(__file__).resolve().parent.parent / "examples" / \
            "regional_fabric.yaml"
        cfg = regional_fabric_config(str(yaml_path), size_scale=16.0,
                                     sim_time_ns=2_000_000)
        assert self._digest(cfg) == self.REGIONAL_PIN


class TestIncastSourceValidation:
    def test_rejects_degenerate_pools(self):
        with pytest.raises(ValueError, match="at least 2 hosts"):
            IncastSource("fg", stub_hosts(1), request_bytes=8 * KB,
                         flows_per_sender=4,
                         arrivals=PoissonArrivals(0.001),
                         sim_time_ns=MILLIS)
        with pytest.raises(ValueError, match="request_bytes"):
            IncastSource("fg", stub_hosts(4), request_bytes=0,
                         flows_per_sender=4,
                         arrivals=PoissonArrivals(0.001),
                         sim_time_ns=MILLIS)
        with pytest.raises(ValueError, match="flows_per_sender"):
            IncastSource("fg", stub_hosts(4), request_bytes=8 * KB,
                         flows_per_sender=0,
                         arrivals=PoissonArrivals(0.001),
                         sim_time_ns=MILLIS)
