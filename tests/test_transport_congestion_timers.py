"""Unit tests for the DCTCP window machine and retransmission timers."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Simulator
from repro.sim.units import MILLIS
from repro.transports.congestion import DctcpWindow, DctcpWindowParams
from repro.transports.timers import RetransmitTimer, RttEstimator


class TestDctcpWindow:
    def test_slow_start_doubles_per_window(self):
        w = DctcpWindow(DctcpWindowParams(init_cwnd=2))
        snd_nxt = 2
        for seq in range(2):
            w.on_ack(seq, False, snd_nxt)
        assert w.cwnd >= 4  # +1 per ack in slow start

    def test_no_marks_no_cut(self):
        w = DctcpWindow(DctcpWindowParams(init_cwnd=10))
        for seq in range(100):
            w.on_ack(seq, False, seq + 10)
        assert w.cwnd > 10
        assert w.ecn_cuts == 0
        assert w.alpha == 0.0

    def test_full_marking_converges_alpha_to_one(self):
        w = DctcpWindow(DctcpWindowParams(init_cwnd=10, g=0.5))
        for seq in range(200):
            w.on_ack(seq, True, seq + 1)  # every window fully marked
        assert w.alpha > 0.9

    def test_cut_proportional_to_alpha(self):
        params = DctcpWindowParams(init_cwnd=100, g=1.0)
        w = DctcpWindow(params)
        w.ssthresh = 1.0  # force congestion avoidance (no growth to speak of)
        # one fully-marked window: alpha -> 1, cwnd cut by alpha/2 = half
        before = w.cwnd
        w.on_ack(0, True, 100)  # ends window [0,0), opens [.,100)
        for seq in range(1, 100):
            w.on_ack(seq, True, 100)
        w.on_ack(100, True, 200)  # window boundary: apply cut
        assert w.cwnd < before * 0.7

    def test_at_most_one_cut_per_window(self):
        w = DctcpWindow(DctcpWindowParams(init_cwnd=64))
        w.on_loss()
        cw = w.cwnd
        w.on_loss()
        assert w.cwnd == cw  # second loss in the same window ignored
        assert w.loss_cuts == 1

    def test_timeout_resets_to_min(self):
        w = DctcpWindow(DctcpWindowParams(init_cwnd=64, min_cwnd=1))
        w.on_timeout()
        assert w.cwnd == 1
        assert w.ssthresh == 32

    def test_window_floor(self):
        w = DctcpWindow(DctcpWindowParams(init_cwnd=1, min_cwnd=1))
        for _ in range(10):
            w.on_loss()
        assert w.cwnd >= 1

    @given(st.lists(st.tuples(st.booleans(), st.booleans()), max_size=300))
    def test_property_cwnd_stays_in_bounds(self, events):
        params = DctcpWindowParams(init_cwnd=10, min_cwnd=1, max_cwnd=1000)
        w = DctcpWindow(params)
        seq = 0
        for ce, loss in events:
            if loss:
                w.on_loss()
            else:
                w.on_ack(seq, ce, seq + 5)
                seq += 1
            assert params.min_cwnd <= w.cwnd <= params.max_cwnd
            assert 0.0 <= w.alpha <= 1.0


class TestRttEstimator:
    def test_rto_floor(self):
        est = RttEstimator(min_rto_ns=4 * MILLIS)
        est.update(10_000)  # 10 us RTT
        assert est.rto_ns() == 4 * MILLIS

    def test_rto_tracks_large_rtt(self):
        est = RttEstimator(min_rto_ns=1)
        for _ in range(20):
            est.update(10 * MILLIS)
        assert 10 * MILLIS <= est.rto_ns() <= 20 * MILLIS

    def test_variance_widens_rto(self):
        est = RttEstimator(min_rto_ns=1)
        for i in range(50):
            est.update(MILLIS if i % 2 else 5 * MILLIS)
        assert est.rto_ns() > 5 * MILLIS

    def test_ignores_nonpositive_samples(self):
        est = RttEstimator()
        est.update(0)
        est.update(-5)
        assert est.srtt is None


class TestRetransmitTimer:
    def test_fires_after_rto(self):
        sim = Simulator()
        fired = []
        est = RttEstimator(min_rto_ns=4 * MILLIS)
        timer = RetransmitTimer(sim, est, lambda: fired.append(sim.now))
        timer.arm()
        sim.run(until=10 * MILLIS)
        assert fired == [4 * MILLIS]

    def test_progress_postpones(self):
        sim = Simulator()
        fired = []
        est = RttEstimator(min_rto_ns=4 * MILLIS)
        timer = RetransmitTimer(sim, est, lambda: fired.append(sim.now))
        timer.arm()
        sim.at(3 * MILLIS, timer.on_progress)
        sim.run(until=6 * MILLIS)
        assert fired == []
        sim.run(until=8 * MILLIS)
        assert fired == [7 * MILLIS]

    def test_backoff_doubles(self):
        sim = Simulator()
        fired = []
        est = RttEstimator(min_rto_ns=1 * MILLIS, max_rto_ns=100 * MILLIS)
        timer = RetransmitTimer(sim, est, lambda: fired.append(sim.now))

        def refire():
            fired.append(sim.now)
            timer.arm()

        timer._on_timeout = refire
        timer.arm()
        sim.run(until=16 * MILLIS)
        # fires at 1, then backoff 2 -> 3ms, then 4 -> 7ms, then 8 -> 15ms
        assert fired == [1 * MILLIS, 3 * MILLIS, 7 * MILLIS, 15 * MILLIS]

    def test_progress_resets_backoff(self):
        sim = Simulator()
        est = RttEstimator(min_rto_ns=1 * MILLIS)
        timer = RetransmitTimer(sim, est, lambda: None)
        timer.arm()
        sim.run(until=2 * MILLIS)  # fired once; backoff now 2
        timer.on_progress()
        assert timer.armed
        assert timer._backoff == 1

    def test_cancel_prevents_fire(self):
        sim = Simulator()
        fired = []
        est = RttEstimator()
        timer = RetransmitTimer(sim, est, lambda: fired.append(1))
        timer.arm()
        timer.cancel()
        sim.run(until=20 * MILLIS)
        assert fired == []

    def test_arm_if_idle_does_not_restart(self):
        sim = Simulator()
        est = RttEstimator(min_rto_ns=4 * MILLIS)
        timer = RetransmitTimer(sim, est, lambda: None)
        timer.arm()
        h1 = timer._handle or timer._timer  # whichever plane is active
        sim.run(until=1 * MILLIS)
        timer.arm_if_idle()
        assert (timer._handle or timer._timer) is h1
