"""Unit tests for the hierarchical timer wheel and the credit plane
(repro.sim.timerwheel, repro.transports.credit_plane — DESIGN.md §6i)."""

import random

import pytest

from repro.net.packet import CREDIT_WIRE_BYTES
from repro.sim.engine import Simulator
from repro.sim.timerwheel import (
    CREDIT_PLANES,
    CoarseTimer,
    TimerWheel,
    credit_plane_backend,
    wheel_enabled,
)
from repro.sim.units import SECONDS
from repro.transports.credit_plane import CreditPlane, CreditTrain


# ----------------------------------------------------------- backend knob


class TestBackendResolution:
    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CREDIT_PLANE", "wheel")
        assert credit_plane_backend("legacy") == "legacy"

    def test_environment_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_CREDIT_PLANE", "legacy")
        assert credit_plane_backend() == "legacy"
        assert not wheel_enabled()

    def test_default_is_wheel(self, monkeypatch):
        monkeypatch.delenv("REPRO_CREDIT_PLANE", raising=False)
        assert credit_plane_backend() == "wheel"
        assert wheel_enabled()

    def test_unknown_plane_rejected(self):
        with pytest.raises(ValueError):
            credit_plane_backend("bogus")
        assert set(CREDIT_PLANES) == {"wheel", "legacy"}


# ------------------------------------------------------------- the wheel


class TestTimerWheel:
    def test_fires_at_exact_deadline(self):
        """Wheel granularity must never round a firing time — a deadline
        mid-tick fires at that nanosecond, not at a tick boundary."""
        sim = Simulator()
        wheel = TimerWheel(sim)
        fired = []
        for delay in (123, 70_000, 65_536 * 3 + 17):
            wheel.arm(delay, lambda d=delay: fired.append((sim.now, d)))
        sim.run()
        assert fired == [(123, 123), (70_000, 70_000),
                         (65_536 * 3 + 17, 65_536 * 3 + 17)]

    def test_cancel_prevents_firing_without_engine_traffic(self):
        sim = Simulator()
        wheel = TimerWheel(sim)
        fired = []
        keep = wheel.arm(200_000, fired.append, "keep")
        drop = wheel.arm(200_001, fired.append, "drop")
        drop.cancel()
        drop.cancel()  # idempotent
        assert drop.cancelled and drop.fn is None and drop.args == ()
        assert wheel.pending() == 1
        sim.run()
        assert fired == ["keep"]
        assert wheel.fired_total == 1
        assert wheel.cancelled_total == 1
        assert not keep.cancelled  # fired timers are not "cancelled"

    def test_same_tick_deadline_bypasses_buckets(self):
        """A deadline inside the current tick can't wait for a bucket
        meta-event; it goes straight to the engine and still fires."""
        sim = Simulator()
        wheel = TimerWheel(sim)  # tick = 65_536 ns
        fired = []
        wheel.arm(5, fired.append, "now-ish")
        assert wheel.pending() == 0  # not filed: handed to the engine
        sim.run()
        assert fired == ["now-ish"] and sim.now == 5

    def test_hierarchical_cascade_preserves_exact_deadline(self):
        """A far deadline files coarse, cascades down level by level, and
        still fires at its exact instant."""
        sim = Simulator()
        wheel = TimerWheel(sim, tick_bits=4, level_bits=2, levels=3)
        fired = []
        # level spans: 16 ns, 64 ns, 256 ns — 1000 ns lands in level 2.
        wheel.arm(1000, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1000]
        assert wheel.cascades >= 1

    def test_firing_order_follows_deadlines(self):
        sim = Simulator()
        wheel = TimerWheel(sim, tick_bits=4, level_bits=2, levels=3)
        rng = random.Random(7)
        delays = [rng.randrange(1, 5000) for _ in range(200)]
        fired = []
        for d in delays:
            wheel.arm(d, fired.append, d)
        sim.run()
        assert fired == sorted(fired)
        assert wheel.fired_total == len(delays)
        assert wheel.pending() == 0

    def test_cancel_heavy_churn_costs_no_engine_events(self):
        """The RTO pattern: arm/cancel per packet. 500 churn cycles must
        add zero engine events beyond the tick meta-events."""
        sim = Simulator()
        wheel = TimerWheel(sim)
        for _ in range(500):
            wheel.arm(4_000_000, lambda: pytest.fail("cancelled timer fired")
                      ).cancel()
        survivor = []
        wheel.arm(4_000_123, survivor.append, True)
        sim.run()
        assert survivor == [True]
        assert sim.now == 4_000_123
        assert wheel.cancelled_total == 500
        # every cancelled timer was purged while draining its bucket
        assert wheel.pending() == 0

    def test_for_sim_returns_shared_instance(self):
        sim = Simulator()
        assert TimerWheel.for_sim(sim) is TimerWheel.for_sim(sim)
        assert TimerWheel.for_sim(Simulator()) is not TimerWheel.for_sim(sim)

    def test_rejects_negative_delay_and_bad_geometry(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            TimerWheel(sim).arm(-1, lambda: None)
        with pytest.raises(ValueError):
            TimerWheel(sim, tick_bits=-1)
        with pytest.raises(ValueError):
            TimerWheel(sim, levels=0)


# ----------------------------------------------------------- CoarseTimer


class TestCoarseTimer:
    @pytest.mark.parametrize("plane", ["wheel", "legacy"])
    def test_arm_fire_rearm_cancel(self, plane):
        sim = Simulator()
        fired = []
        timer = CoarseTimer(sim, lambda: fired.append(sim.now), plane=plane)
        assert not timer.armed
        timer.arm(100)
        assert timer.armed
        timer.arm(200)  # re-arm replaces the first deadline
        sim.run()
        assert fired == [200]
        assert not timer.armed
        timer.arm(300)
        timer.cancel()
        timer.cancel()  # idempotent
        sim.run()
        assert fired == [200]

    def test_wheel_plane_uses_shared_wheel(self):
        sim = Simulator()
        timer = CoarseTimer(sim, lambda: None, plane="wheel")
        timer.arm(1_000_000)
        assert TimerWheel.for_sim(sim).pending() == 1
        legacy = CoarseTimer(sim, lambda: None, plane="legacy")
        legacy.arm(1_000_000)
        assert TimerWheel.for_sim(sim).pending() == 1  # legacy stays off-wheel


# ---------------------------------------------------------- credit plane


class TestCreditTrain:
    def test_draw_sequence_matches_scalar_oracle(self):
        """The batched train must replay the legacy per-credit draws bit
        for bit: same RNG, same order, same max(1, int(...)) pricing —
        across multiple BATCH refills."""
        seed = 1 * 2654435761 % (1 << 31)
        train = CreditTrain(random.Random(seed))
        oracle_rng = random.Random(seed)
        rate = 5e9
        base = CREDIT_WIRE_BYTES * 8 * SECONDS / rate
        n = CreditTrain.BATCH * 2 + 7
        got = [train.next_interval_ns(rate) for _ in range(n)]
        want = [max(1, int(base * oracle_rng.uniform(0.5, 1.5)))
                for _ in range(n)]
        assert got == want

    def test_rate_change_reprices_base_exactly(self):
        seed = 42
        train = CreditTrain(random.Random(seed))
        oracle_rng = random.Random(seed)
        intervals = []
        oracle = []
        for rate in (5e9, 5e9, 2.5e9, 2.5e9, 7.5e9):
            intervals.append(train.next_interval_ns(rate))
            base = CREDIT_WIRE_BYTES * 8 * SECONDS / rate
            oracle.append(max(1, int(base * oracle_rng.uniform(0.5, 1.5))))
        assert intervals == oracle
        # halving the rate doubles the base: later draws are repriced
        assert train._base_rate == 7.5e9


class TestPlaneEquivalence:
    def test_digest_identical_legacy_vs_wheel_on_tiny_cell(self):
        """The PR's core proof obligation, at test scale: one audited
        FlexPass cell replayed under both planes produces bit-identical
        event digests (the full 15-cell matrix runs in CI via
        ``repro audit --compare-credit-planes``)."""
        from repro.audit.replay import compare_credit_planes
        from tests.test_audit import audit_cfg

        report = compare_credit_planes(audit_cfg())
        assert report.match, (report.divergence_epoch, report.events_a,
                              report.events_b)
        assert report.total_events > 0


class _FakeHost:
    def __init__(self):
        self._credit_plane = None


class TestCreditPlane:
    def test_for_host_is_singleton_per_host(self):
        sim = Simulator()
        h1, h2 = _FakeHost(), _FakeHost()
        assert CreditPlane.for_host(sim, h1) is CreditPlane.for_host(sim, h1)
        assert CreditPlane.for_host(sim, h1) is not CreditPlane.for_host(sim, h2)

    def test_register_unregister_and_counters(self):
        plane = CreditPlane(Simulator(), _FakeHost())
        train = CreditTrain(random.Random(1))
        plane.register(1, train)
        plane.register(2)  # trainless (pHost-style) registration
        assert plane.active == 2 and plane.registered_total == 2
        plane.unregister(1)
        plane.unregister(1)  # tolerant double-stop
        plane.unregister(99)  # and stop-before-start
        assert plane.active == 1
        plane.note_emitted()
        plane.note_emitted()
        assert plane.emitted == 2
