"""Figure 17: selective-dropping threshold trade-off (Appendix A).

Paper: a lower threshold improves tail FCT at full deployment (tighter
queue bound, lower RTT variance) but increases drops and hence worsens the
overall average FCT; a higher threshold trades the other way.
"""

from repro.experiments.sweep import fig17_seldrop_sweep
from repro.metrics.summary import print_table

from benchmarks.common import bench_config, run_once

THRESHOLDS_KB = (50, 100, 150, 200)


def test_bench_fig17(benchmark):
    points = run_once(benchmark, fig17_seldrop_sweep, bench_config(),
                      THRESHOLDS_KB)
    print_table(
        "Figure 17: selective-dropping threshold sweep (full deployment)",
        ("threshold (kB)", "p99 small (ms)", "avg FCT (ms)"),
        points,
    )
    # Shape: the experiment runs across the whole range and both metrics
    # stay finite — the trade-off direction is workload-dependent at this
    # scale, so we assert the tightest threshold does not *improve* the
    # average FCT relative to the loosest (drops cost throughput).
    avgs = {kb: avg for kb, _, avg in points}
    assert avgs[THRESHOLDS_KB[0]] >= avgs[THRESHOLDS_KB[-1]] * 0.9
