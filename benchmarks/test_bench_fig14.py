"""Figure 14: sensitivity to network load.

Paper: the naïve ExpressPass rollout's mid-transition penalty grows with
load (DCTCP even times out above 60% load), while FlexPass shows no
degradation during deployment even at 70% load.
"""

from repro.experiments.config import SchemeName
from repro.experiments.sweep import fig14_load_sweep
from repro.metrics.summary import print_table

from benchmarks.common import BENCH_DEPLOYMENTS, bench_config, run_once

LOADS = (0.1, 0.4, 0.7)


def test_bench_fig14(benchmark):
    cells = run_once(
        benchmark, fig14_load_sweep, bench_config(),
        LOADS, BENCH_DEPLOYMENTS, (SchemeName.NAIVE, SchemeName.FLEXPASS),
    )
    rows = [
        (scheme, f"{load:.0%}", f"{dep:.0%}", cell.p99_small_ms, cell.timeouts)
        for (scheme, load, dep), cell in sorted(cells.items())
    ]
    print_table("Figure 14: 99p small-flow FCT vs deployment under load",
                ("scheme", "load", "deployed", "p99 small (ms)", "timeouts"),
                rows)
    # Shape 1: at high load the naïve rollout's mid-transition tail is much
    # worse than FlexPass's.
    assert cells[("naive", 0.7, 0.5)].p99_small_ms > \
        cells[("flexpass", 0.7, 0.5)].p99_small_ms
    # Shape 2: FlexPass's mid-transition penalty stays bounded even at 70%
    # load (paper: "does not show performance degradation ... even at a very
    # high load").
    ratio = cells[("flexpass", 0.7, 0.5)].p99_small_ms / \
        cells[("flexpass", 0.7, 0.0)].p99_small_ms
    naive_ratio = cells[("naive", 0.7, 0.5)].p99_small_ms / \
        cells[("naive", 0.7, 0.0)].p99_small_ms
    assert ratio < naive_ratio
