"""Figure 12: 99p small-flow FCT split by traffic group during the transition.

Paper: naïve ExpressPass inflates legacy tail FCT up to 87%; FlexPass's
legacy harm is minimal while its upgraded traffic improves by up to 44%.
"""

from repro.experiments.config import SchemeName
from repro.experiments.sweep import deployment_sweep, fig12_rows, print_grid

from benchmarks.common import BENCH_DEPLOYMENTS, bench_config_large, run_once


def test_bench_fig12(benchmark):
    # Twice the default window: the naïve scheme's legacy harm arrives in
    # bursts (DCTCP backoff spirals), so short windows under-sample it.
    from benchmarks.common import BENCH_MS
    from repro.sim.units import MILLIS

    base = bench_config_large(sim_time_ns=2 * BENCH_MS * MILLIS)
    grid = run_once(
        benchmark, deployment_sweep, base,
        (SchemeName.NAIVE, SchemeName.FLEXPASS), BENCH_DEPLOYMENTS,
    )
    print_grid(
        "Figure 12: tail FCT by group (legacy vs upgraded)",
        fig12_rows(grid),
        ("scheme", "deployed", "legacy p99 (ms)", "upgraded p99 (ms)"),
    )
    baseline = grid[("flexpass", 0.0)].p99_small_ms
    # Shape 1: mid-transition, naïve deployment harms legacy traffic far
    # more than FlexPass does.
    assert grid[("naive", 0.5)].p99_small_legacy_ms > \
        grid[("flexpass", 0.5)].p99_small_legacy_ms
    # Shape 2: FlexPass-upgraded traffic at full deployment beats the
    # legacy baseline (the paper's headline 44% improvement).
    assert grid[("flexpass", 1.0)].p99_small_new_ms < baseline
    # Shape 3: upgraded traffic already benefits mid-transition — "traffic
    # converted to FlexPass benefits ... even under the co-existence".
    assert grid[("flexpass", 0.5)].p99_small_new_ms < baseline
