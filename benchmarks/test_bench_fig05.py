"""Figure 5: FlexPass vs the rejected design alternatives of §4.3.

(a) RC3-style flow splitting needs a far larger reordering buffer for
    comparable tail FCT; (b) putting the reactive sub-flow in the legacy
    queue ("alternative queueing") degrades tail FCT across deployment.
"""

from repro.experiments.sweep import fig05a_rc3_comparison, fig05b_altq_comparison
from repro.metrics.summary import print_table

from benchmarks.common import BENCH_DEPLOYMENTS, bench_config, run_once


def test_bench_fig05a(benchmark):
    results = run_once(benchmark, fig05a_rc3_comparison, bench_config())
    print_table(
        "Figure 5(a): FlexPass vs RC3 flow splitting",
        ("scheme", "p99 small FCT (ms)", "avg max reorder buffer (kB)"),
        [(r.scheme, r.p99_small_ms, r.avg_max_reorder_kb) for r in results],
    )
    flexpass, rc3 = results
    # Shape (the §4.3 argument): the FCTs are comparable — neither design
    # dominates by an order of magnitude — but RC3 splitting pays a much
    # larger reordering buffer, which is why the paper rejects it.
    assert rc3.avg_max_reorder_kb > 2 * flexpass.avg_max_reorder_kb
    ratio = flexpass.p99_small_ms / rc3.p99_small_ms
    assert 0.25 < ratio < 4.0


def test_bench_fig05b(benchmark):
    grid = run_once(benchmark, fig05b_altq_comparison, bench_config(),
                    BENCH_DEPLOYMENTS)
    rows = [(s, f"{d:.0%}", c.p99_small_ms) for (s, d), c in sorted(grid.items())]
    print_table("Figure 5(b): FlexPass vs alternative queueing",
                ("scheme", "deployed", "p99 small FCT (ms)"), rows)
    # Shape: both variants run the whole sweep and stay in the same
    # performance regime. The paper's altq penalty — reactive packets
    # trapped behind bursty legacy traffic in Q2 — needs the full-scale
    # legacy queueing depths to dominate; at bench scale with time-scaled
    # (shallow) thresholds the two track each other, so we assert the
    # band rather than the ordering (see EXPERIMENTS.md).
    for dep in BENCH_DEPLOYMENTS:
        fp = grid[("flexpass", dep)].p99_small_ms
        alt = grid[("flexpass_altq", dep)].p99_small_ms
        assert fp == fp and alt == alt  # both produced data (not NaN)
        assert fp <= alt * 2.0 and alt <= fp * 2.0
