"""Figure 9: testbed coexistence — starvation time of legacy DCTCP.

Paper: against naïve ExpressPass, DCTCP takes 9.3% of the link and is
starved 96.86% of the time; against FlexPass the split is 51/48 and
starvation is 0.08%.
"""

from repro.experiments.figures import fig09_coexistence
from repro.metrics.summary import print_table

from benchmarks.common import run_once


def test_bench_fig09(benchmark):
    def run():
        return (fig09_coexistence("expresspass", duration_ms=25, flow_mb=40),
                fig09_coexistence("flexpass", duration_ms=25, flow_mb=40))

    xp, fp = run_once(benchmark, run)
    xp.print_report()
    fp.print_report()
    print_table(
        "Figure 9(c): starvation time (bandwidth < 20%)",
        ("scheme", "legacy starvation"),
        [("ExpressPass", f"{xp.starvation('dctcp'):.2%}"),
         ("FlexPass", f"{fp.starvation('dctcp'):.2%}")],
    )
    # Shapes: naïve ExpressPass starves DCTCP nearly always; FlexPass
    # essentially never; FlexPass splits the link near 50/50.
    assert xp.starvation("dctcp") > 0.6
    assert fp.starvation("dctcp") < 0.05
    assert 0.35 < fp.share("dctcp") < 0.65
    assert 0.35 < fp.share("flexpass") < 0.65
