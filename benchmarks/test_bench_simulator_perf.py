"""Simulator-core performance benchmarks (not a paper figure).

Tracks the raw cost of the two hot paths every experiment is built on:
event dispatch in the DES kernel and store-and-forward packet transport
across the fabric. Useful for catching performance regressions that would
silently stretch every figure bench.
"""

from repro.net.packet import Dscp, Packet, PacketKind
from repro.net.topology import DumbbellSpec, build_dumbbell
from repro.sim.engine import Simulator
from repro.sim.units import MILLIS

from tests.test_net_port_topology import Recorder, single_queue_factory


def test_bench_event_dispatch(benchmark):
    """Pure engine: schedule/execute 200k chained events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 200_000:
                sim.after(10, tick)

        sim.at(0, tick)
        sim.run()
        return count[0]

    executed = benchmark(run)
    assert executed == 200_000


def test_bench_packet_forwarding(benchmark):
    """Fabric: push 20k packets across a 3-hop dumbbell path."""

    def run():
        sim = Simulator()
        db = build_dumbbell(sim, single_queue_factory, DumbbellSpec(n_pairs=1))
        rec = Recorder()
        db.receivers[0].register_receiver(1, rec)
        src, dst = db.senders[0], db.receivers[0]
        n = 20_000
        for _ in range(n):
            src.send(Packet(PacketKind.DATA, 1, src.id, dst.id, 1584,
                            dscp=Dscp.LEGACY))
        sim.run()
        return len(rec.packets)

    delivered = benchmark(run)
    assert delivered == 20_000
