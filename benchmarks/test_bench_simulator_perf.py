"""Simulator-core performance benchmarks (not a paper figure).

Tracks the raw cost of the three hot paths every experiment is built on:
event dispatch in the DES kernel, store-and-forward packet transport
across the fabric, and the strict-priority + DWRR egress scheduler.
Useful for catching performance regressions that would silently stretch
every figure bench.

Besides pytest-benchmark's timing, every run merges its headline rates
into a ``BENCH_engine.json`` record (``REPRO_BENCH_OUT`` overrides the
path) via :mod:`repro.metrics.bench`, so the trajectory of events/sec and
packets/sec is tracked across PRs. The committed reference lives at
``benchmarks/baselines/BENCH_engine.json``; see EXPERIMENTS.md
("Performance tracking") for how to read and refresh it.
"""

import time

from repro.metrics.bench import record_bench
from repro.net.packet import Dscp, Packet, PacketKind
from repro.net.queues import PacketQueue, QueueConfig
from repro.net.scheduler import PortScheduler, QueueSchedule
from repro.net.topology import DumbbellSpec, build_dumbbell
from repro.sim.engine import Simulator

from tests.test_net_port_topology import Recorder, single_queue_factory


def _record_rate(name, count, elapsed, unit, **extra):
    metrics = {f"n_{unit}": count, "elapsed_s": elapsed,
               f"{unit}_per_sec": count / elapsed}
    metrics.update(extra)
    record_bench(name, metrics)


def test_bench_event_dispatch(benchmark):
    """Pure engine: schedule/execute 200k chained events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 200_000:
                sim.after(10, tick)

        sim.at(0, tick)
        t0 = time.perf_counter()
        sim.run()
        _record_rate("event_dispatch", count[0], time.perf_counter() - t0,
                     "events")
        return count[0]

    executed = benchmark(run)
    assert executed == 200_000


def test_bench_packet_forwarding(benchmark):
    """Fabric: push 20k packets across a 3-hop dumbbell path."""

    def run():
        sim = Simulator()
        db = build_dumbbell(sim, single_queue_factory, DumbbellSpec(n_pairs=1))
        rec = Recorder()
        db.receivers[0].register_receiver(1, rec)
        src, dst = db.senders[0], db.receivers[0]
        n = 20_000
        for _ in range(n):
            src.send(Packet(PacketKind.DATA, 1, src.id, dst.id, 1584,
                            dscp=Dscp.LEGACY))
        t0 = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - t0
        _record_rate("packet_forwarding", n, elapsed, "packets",
                     events_per_sec=sim.events_run / elapsed)
        return len(rec.packets)

    delivered = benchmark(run)
    assert delivered == 20_000


def _forwarding_elapsed(with_telemetry: bool, n: int = 20_000):
    """One forwarding run; returns (elapsed seconds, packets delivered)."""
    from repro.metrics.telemetry import TelemetrySampler
    from repro.sim.units import MILLIS

    sim = Simulator()
    db = build_dumbbell(sim, single_queue_factory, DumbbellSpec(n_pairs=1))
    rec = Recorder()
    db.receivers[0].register_receiver(1, rec)
    src, dst = db.senders[0], db.receivers[0]
    if with_telemetry:
        # Same watch surface the runner installs: switch ports (hosts are
        # never watched, even with ports="all") + link util + pool gauges,
        # at the default 100 us cadence, for the whole drain (~25 ms at
        # 10 Gbps) plus a margin.
        horizon = ((n * 1584 * 8) // 10 + 2 * MILLIS)
        sampler = TelemetrySampler(sim, interval_ns=100_000, until_ns=horizon)
        for sw in db.topo.switches:
            for port in sw.ports.values():
                sampler.watch_port(port)
                sampler.watch_link(port)
        sampler.watch_pool()
        sampler.start()
    for _ in range(n):
        src.send(Packet(PacketKind.DATA, 1, src.id, dst.id, 1584,
                        dscp=Dscp.LEGACY))
    t0 = time.perf_counter()
    sim.run()
    return time.perf_counter() - t0, len(rec.packets)


def test_bench_telemetry_overhead(benchmark):
    """The sampler at default cadence (100 µs) must cost <5% packets/sec on
    the forwarding bench: telemetry reads counters per tick, not per packet,
    so its cost is probes x ticks and stays flat as traffic scales.

    Interleaved min-of-3 timing on each side squeezes out scheduler noise
    before comparing.
    """
    n = 20_000

    def run():
        # Untimed warmup pair first: the cold run pays import and
        # allocator-warmup costs that would otherwise skew whichever side
        # happens to go first.
        _forwarding_elapsed(False, 2_000)
        _forwarding_elapsed(True, 2_000)
        pair_overheads, on_times = [], []
        for _ in range(4):
            t_off, delivered = _forwarding_elapsed(False, n)
            assert delivered == n
            t_on, delivered = _forwarding_elapsed(True, n)
            assert delivered == n
            pair_overheads.append(t_on / t_off - 1.0)
            on_times.append(t_on)
        # A real regression (a per-packet hook sneaking in) inflates every
        # pair; one-sided scheduler noise inflates only some — gate on the
        # best pair so the 5% budget measures the sampler, not the machine.
        overhead = min(pair_overheads)
        ranked = sorted(pair_overheads)
        median = (ranked[1] + ranked[2]) / 2.0
        _record_rate("telemetry_overhead", n, min(on_times), "packets",
                     overhead_fraction=overhead, overhead_median=median)
        return overhead

    overhead = benchmark.pedantic(run, rounds=1, iterations=1)
    assert overhead < 0.05, (
        f"telemetry sampler costs {overhead:.1%} packets/sec "
        f"(budget 5%) on the forwarding bench"
    )


def _forwarding_audit_elapsed(mode: str, n: int = 20_000):
    """One forwarding run with the audit attach path in ``mode``:
    ``"off"`` (no audit config at all), ``"disabled"``
    (``AuditConfig(enabled=False)`` through the same gate the runner
    uses — nothing may be constructed), ``"enabled"`` (digest taps +
    100 µs checkpoints + the full horizon audit).
    Returns (elapsed seconds, packets delivered)."""
    from repro.audit import AuditConfig, InvariantAuditor
    from repro.sim.units import MILLIS

    sim = Simulator()
    db = build_dumbbell(sim, single_queue_factory, DumbbellSpec(n_pairs=1))
    rec = Recorder()
    db.receivers[0].register_receiver(1, rec)
    src, dst = db.senders[0], db.receivers[0]
    auditor = None
    if mode != "off":
        acfg = AuditConfig(enabled=(mode == "enabled"), digest=True,
                           checkpoint_interval_ns=100_000)
        if acfg.enabled:  # the runner's _attach_audit gate
            horizon = ((n * 1584 * 8) // 10 + 2 * MILLIS)
            auditor = InvariantAuditor(sim, db.topo, config=acfg)
            auditor.install(horizon)
    for _ in range(n):
        src.send(Packet(PacketKind.DATA, 1, src.id, dst.id, 1584,
                        dscp=Dscp.LEGACY))
    t0 = time.perf_counter()
    sim.run()
    if auditor is not None:
        report = auditor.finalize()
        assert report.ok, report.violations
    return time.perf_counter() - t0, len(rec.packets)


def test_bench_audit_overhead(benchmark):
    """A disabled audit must be free: <2% packets/sec vs the plain
    forwarding baseline, because the attach gate constructs nothing and
    installs no per-packet hook. The fully enabled cost (digest taps on
    every delivery + checkpoints + horizon audit) rides along as a
    tracked metric, not a gate.

    Interleaved min-of-4 pairs, like the telemetry gate: a real
    regression (a hook sneaking into the disabled path) inflates every
    pair; scheduler noise inflates only some.
    """
    n = 20_000

    def run():
        # Untimed warmup on all three sides (imports, allocator warmup).
        _forwarding_audit_elapsed("off", 2_000)
        _forwarding_audit_elapsed("disabled", 2_000)
        _forwarding_audit_elapsed("enabled", 2_000)
        pair_overheads, dis_times, enabled_overheads = [], [], []
        for _ in range(4):
            t_off, delivered = _forwarding_audit_elapsed("off", n)
            assert delivered == n
            t_dis, delivered = _forwarding_audit_elapsed("disabled", n)
            assert delivered == n
            t_on, delivered = _forwarding_audit_elapsed("enabled", n)
            assert delivered == n
            pair_overheads.append(t_dis / t_off - 1.0)
            enabled_overheads.append(t_on / t_off - 1.0)
            dis_times.append(t_dis)
        overhead = min(pair_overheads)
        _record_rate("audit_overhead", n, min(dis_times), "packets",
                     overhead_fraction=overhead,
                     enabled_overhead_fraction=min(enabled_overheads))
        return overhead

    overhead = benchmark.pedantic(run, rounds=1, iterations=1)
    assert overhead < 0.02, (
        f"disabled audit costs {overhead:.1%} packets/sec (budget 2%) "
        f"on the forwarding bench — the disabled path must construct "
        f"nothing"
    )


def test_bench_dwrr_egress(benchmark):
    """Egress scheduler: drain 60k packets through the paper's 3-queue port
    shape (strict-priority credit queue + two DWRR data queues, one with a
    small weight — the configuration that used to wedge)."""

    def run():
        queues = [PacketQueue(QueueConfig(name=f"q{i}")) for i in range(3)]
        sched = PortScheduler([
            QueueSchedule(queues[0], priority=0, weight=1.0),
            QueueSchedule(queues[1], priority=1, weight=1.0),
            QueueSchedule(queues[2], priority=1, weight=0.05),
        ])
        per_queue = 20_000
        for q in queues:
            for _ in range(per_queue):
                q.push(Packet(PacketKind.DATA, 1, 0, 1, 1500,
                              dscp=Dscp.LEGACY))
        total = 3 * per_queue
        t0 = time.perf_counter()
        served = 0
        while True:
            pkt, _ = sched.next(0)
            if pkt is None:
                break
            served += 1
        _record_rate("dwrr_egress", total, time.perf_counter() - t0,
                     "packets")
        return served

    served = benchmark(run)
    assert served == 60_000


def test_bench_packet_pool(benchmark):
    """Pool: acquire/release churn across two interleaved flows (the host
    TX -> fabric -> sink lifetime pattern, batched like a draining queue)."""
    from repro.net.packet import PacketPool

    def run():
        pool = PacketPool(max_size=4096)
        n = 200_000
        t0 = time.perf_counter()
        live = []
        for i in range(n):
            pkt = pool.acquire(PacketKind.DATA, 1 + (i & 1), 0, 1, 1584,
                               seq=i, dscp=Dscp.LEGACY)
            live.append(pkt)
            if len(live) >= 32:
                for p in live[:16]:
                    pool.release(p)
                del live[:16]
        for p in live:
            pool.release(p)
        elapsed = time.perf_counter() - t0
        _record_rate("packet_pool", n, elapsed, "packets",
                     reuse_ratio=pool.reused / pool.acquired)
        return pool.released

    released = benchmark.pedantic(run, rounds=1, iterations=1)
    assert released == 200_000


def test_bench_sweep_throughput(benchmark):
    """Sweep: stream a batch of tiny Clos experiments through run_many
    (imap_unordered + packed records), the figure-sweep execution path."""
    from repro.experiments.config import ExperimentConfig, SchemeName
    from repro.experiments.parallel import FailedResult, run_many

    def run():
        n = 8
        configs = [
            ExperimentConfig(scheme=SchemeName.DCTCP, sim_time_ns=1_000_000,
                             load=0.3, seed=seed)
            for seed in range(1, n + 1)
        ]
        t0 = time.perf_counter()
        results = run_many(configs)
        elapsed = time.perf_counter() - t0
        assert not any(isinstance(r, FailedResult) for r in results)
        _record_rate("sweep_throughput", n, elapsed, "configs")
        return len(results)

    count = benchmark.pedantic(run, rounds=1, iterations=1)
    assert count == 8


def test_bench_traffic_gen(benchmark):
    """Streaming generator suite: digest 200k flows from three merged
    sources (empirical open-loop, ON/OFF bimodal with a locality matrix,
    coflow jobs). Pure generator overhead, no simulator — the cost the
    runner's streaming pump pays per flow on top of the simulation
    itself. Records the same ``traffic_gen`` entry as
    ``tools/profile_sim.py --scenario traffic_gen``.
    """
    import itertools

    from repro.sim.rng import RngRegistry
    from repro.workloads.gen import (SourceConfig, TrafficConfig,
                                     build_sources, merge_sources,
                                     stream_digest, stub_groups)

    def run():
        traffic = TrafficConfig(sources=(
            SourceConfig(name="bg", kind="open", load_share=0.7,
                         locality="grouped:intra=0.8"),
            SourceConfig(name="burst", kind="open", load_share=0.2,
                         sizes="bimodal:small_kb=2,large_mb=0.5",
                         arrivals="onoff:on_us=50,off_us=200",
                         locality="matrix:intra=0.6"),
            SourceConfig(name="jobs", kind="coflow", load_share=0.1,
                         fanout=4),
        ))
        groups = stub_groups(32, 4)
        hosts = [h for g in groups for h in g]
        sources = build_sources(traffic, hosts, groups, load=0.6,
                                rate_bps=10e9, sim_time_ns=1 << 62,
                                size_scale=8.0)
        n = 200_000
        stream = itertools.islice(merge_sources(sources, RngRegistry(1)), n)
        t0 = time.perf_counter()
        digest = stream_digest(stream)
        _record_rate("traffic_gen", digest.flows,
                     time.perf_counter() - t0, "flows")
        return digest.flows

    flows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert flows >= 200_000


def test_bench_clos_full(benchmark):
    """Paper-scale Clos (192 hosts, 40 Gbps, §6.2 shape) at full load.

    The headline deployment scenario at a reduced horizon: every upgraded
    host runs credit pacing at 40 Gbps, so the credit plane — batched
    jitter trains, handle-free pacing posts, wheel-filed watchdogs —
    dominates the event mix rather than raw dispatch. Records the same
    ``clos_full`` entry as ``tools/profile_sim.py --scenario clos_full``
    (same 200 µs horizon, so the rates are directly comparable).
    """
    from repro.experiments.runner import run_experiment
    from repro.experiments.scenarios import paper_scale_config
    from repro.sim.units import MICROS

    def run():
        cfg = paper_scale_config(hosts=192, full_load=True,
                                 sim_time_ns=200 * MICROS)
        t0 = time.perf_counter()
        result = run_experiment(cfg)
        elapsed = time.perf_counter() - t0
        assert not result.aborted, result.abort_reason
        _record_rate("clos_full", result.events_run, elapsed, "events",
                     n_flows=len(result.records))
        return result.events_run

    events = benchmark.pedantic(run, rounds=1, iterations=1)
    assert events > 0
