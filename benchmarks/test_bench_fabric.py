"""Durable sweep fabric overhead (not a paper figure).

The fabric adds journalling (fsynced verdict lines), per-cell leases and
heartbeats, and a shared result store on top of the plain ``run_many``
pool. That robustness must stay cheap: this bench runs the same tiny
Clos grid through both paths and records the wall-clock ratio, plus the
resume cost (a second ``run()`` over a complete journal, which should be
pure store reads — no simulation).

Headline metrics merge into ``BENCH_engine.json`` like the other engine
benches (``fabric_overhead``: ``overhead_ratio``,
``resume_per_cell_s``). The assertion is a loose guard against the
fabric becoming accidentally serial or the journal becoming a hot-path
fsync storm — not a tight perf gate, since the grid is tiny and the cell
wall time dominates.
"""

import time

import pytest

from repro.experiments.config import ExperimentConfig, SchemeName
from repro.experiments.fabric import FabricConfig, SweepFabric
from repro.experiments.parallel import FailedResult, run_many
from repro.metrics.bench import record_bench

N_CELLS = 8


def _grid():
    return [
        ExperimentConfig(scheme=SchemeName.DCTCP, sim_time_ns=1_000_000,
                         load=0.3, seed=seed)
        for seed in range(1, N_CELLS + 1)
    ]


@pytest.mark.slow
def test_bench_fabric_overhead(benchmark, tmp_path):
    def run():
        # Plain pool path: the baseline every figure sweep uses.
        t0 = time.perf_counter()
        plain = run_many(_grid())
        plain_s = time.perf_counter() - t0
        assert not any(isinstance(r, FailedResult) for r in plain)

        # Fabric path: journal + leases + SQLite store, cold.
        fabric = SweepFabric(tmp_path / "journal",
                             store=f"sqlite:{tmp_path}/results.db",
                             config=FabricConfig(heartbeat_s=1.0))
        t0 = time.perf_counter()
        durable = fabric.run(_grid())
        fabric_s = time.perf_counter() - t0
        assert fabric.last_report.status == "complete"
        assert fabric.last_report.executed == N_CELLS

        # Resume over a complete journal: store reads only.
        resumed = SweepFabric(tmp_path / "journal")
        t0 = time.perf_counter()
        resumed.run()
        resume_s = time.perf_counter() - t0
        assert resumed.last_report.executed == 0

        ratio = fabric_s / plain_s
        record_bench("fabric_overhead", {
            "n_cells": N_CELLS,
            "plain_s": plain_s,
            "fabric_s": fabric_s,
            "overhead_ratio": ratio,
            "resume_s": resume_s,
            "resume_per_cell_s": resume_s / N_CELLS,
        })
        for a, b in zip(plain, durable):
            assert a.records == b.records
        return ratio

    ratio = benchmark.pedantic(run, rounds=1, iterations=1)
    # Durability should cost a bounded constant factor on even a tiny
    # grid (where per-cell wall time least amortizes the fixed costs).
    assert ratio < 3.0, f"fabric overhead ratio {ratio:.2f} too high"
