"""Figure 11: the deployment transition under mixed traffic.

Paper: with 10% of traffic volume as synchronized foreground incast, the
conclusions of Figure 10 hold — FlexPass keeps the transition smooth while
the naïve rollout degrades both tail and average FCT.
"""

from repro.experiments.config import SchemeName
from repro.experiments.sweep import deployment_sweep, fig10_rows, print_grid

from benchmarks.common import BENCH_DEPLOYMENTS, bench_config_large, run_once


def test_bench_fig11(benchmark):
    base = bench_config_large(foreground_fraction=0.1)
    grid = run_once(
        benchmark, deployment_sweep, base,
        (SchemeName.NAIVE, SchemeName.FLEXPASS), BENCH_DEPLOYMENTS,
    )
    print_grid(
        "Figure 11: mixed traffic (10% foreground incast)",
        fig10_rows(grid),
        ("scheme", "deployed", "p99 small (ms)", "avg (ms)", "censored"),
    )
    # Shape: FlexPass's tail FCT stays well below naïve's both
    # mid-transition and at full deployment. (At this scaled-down incast
    # degree the absolute comparison against the 0% DCTCP baseline flips —
    # 44-flow 8 kB bursts are harmless to DCTCP but big enough to trip
    # selective dropping; the paper's 764-flow bursts are the opposite.
    # EXPERIMENTS.md discusses the scale artifact.)
    assert grid[("flexpass", 0.5)].p99_small_ms < \
        grid[("naive", 0.5)].p99_small_ms
    assert grid[("flexpass", 1.0)].p99_small_ms < \
        grid[("naive", 1.0)].p99_small_ms
    assert grid[("flexpass", 1.0)].avg_all_ms < \
        grid[("naive", 1.0)].avg_all_ms
