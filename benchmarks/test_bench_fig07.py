"""Figure 7: sub-flow throughput anatomy on the two-to-one testbed topology.

Paper: (a) a lone FlexPass flow fills the link — proactive w_q=50%,
reactive the rest; (b) two FlexPass flows share fairly, mostly proactive;
(c) against DCTCP both get ~half and the reactive sub-flow yields.
"""

from repro.experiments.figures import fig07_subflow_throughput

from benchmarks.common import run_once


def test_bench_fig07a(benchmark):
    fig = run_once(benchmark, fig07_subflow_throughput, "one_flexpass",
                   duration_ms=25)
    fig.print_report()
    assert 0.35 < fig.share("proactive") < 0.65
    assert 0.35 < fig.share("reactive") < 0.65


def test_bench_fig07b(benchmark):
    fig = run_once(benchmark, fig07_subflow_throughput, "two_flexpass",
                   duration_ms=25)
    fig.print_report()
    # Two proactive sub-flows contend for the w_q reservation; reactive fills
    # the rest — proactive carries the larger share (paper: "mainly
    # transmits the data using the proactive sub-flow").
    assert fig.share("proactive") > 0.4


def test_bench_fig07c(benchmark):
    fig = run_once(benchmark, fig07_subflow_throughput, "dctcp_vs_flexpass",
                   duration_ms=25)
    fig.print_report()
    # DCTCP gets ~half; FlexPass's share is almost entirely proactive.
    assert 0.35 < fig.share("dctcp") < 0.65
    assert fig.share("reactive") < 0.15
    assert fig.starvation("dctcp") < 0.1
