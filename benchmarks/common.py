"""Shared configuration for the per-figure benchmarks.

Every figure of the paper's evaluation has a ``test_bench_figNN`` target
that regenerates its series at a Python-feasible scale and prints the rows.
Absolute numbers differ from the paper (simulator vs testbed, scaled
topology and flow sizes); the *shape* assertions in each bench encode what
must match: who wins, who starves, where the crossovers are.

Environment knobs:

* ``REPRO_BENCH_MS``    — simulated milliseconds per run (default 8).
* ``REPRO_BENCH_SCALE`` — flow-size divisor (default 8; 1 = paper sizes).
"""

from __future__ import annotations

import os

from repro.experiments.config import ExperimentConfig
from repro.experiments.sweep import default_sweep_config
from repro.net.topology import ClosSpec
from repro.sim.units import MILLIS

BENCH_MS = int(os.environ.get("REPRO_BENCH_MS", "8"))
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "8"))

#: 12 hosts / 4 racks / 2 pods — the smallest Clos that still exercises
#: core links, rack-granularity deployment, and ECMP. Used for the wide
#: parameter sweeps where only *relative* shapes are asserted.
BENCH_CLOS = ClosSpec(n_pods=2, aggs_per_pod=2, tors_per_pod=2, hosts_per_tor=3)

#: 24 hosts / 8 racks — the scale at which the paper's *magnitude* claims
#: (FlexPass beating the DCTCP baseline at full deployment, upgraded flows
#: beating legacy mid-transition) reproduce; used by the Figure 10-13
#: benches. Needs ~20 s per run.
BENCH_CLOS_LARGE = ClosSpec(n_pods=2, aggs_per_pod=2, tors_per_pod=4,
                            hosts_per_tor=3)

#: Deployment points for sweep benches (full 5-point sweeps are the
#: examples' job; benches keep the endpoints and the midpoint).
BENCH_DEPLOYMENTS = (0.0, 0.5, 1.0)


def bench_config(**overrides) -> ExperimentConfig:
    base = dict(
        sim_time_ns=BENCH_MS * MILLIS,
        size_scale=BENCH_SCALE,
        clos=BENCH_CLOS,
        load=0.5,
        seed=1,
    )
    base.update(overrides)
    return default_sweep_config(**base)


def bench_config_large(**overrides) -> ExperimentConfig:
    """The 24-host configuration with the paper's 50%+ effective core load."""
    base = dict(clos=BENCH_CLOS_LARGE, load=0.6, seed=2)
    base.update(overrides)
    return bench_config(**base)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
