"""Figure 15: tail-FCT gains across four realistic workloads.

Paper: FlexPass improves the 99p small-flow FCT by up to 63% at full
deployment across cache-follower, web-search, data-mining, and Hadoop
workloads, with few side effects during deployment; naïve deployment
degrades the transition everywhere.
"""

from repro.experiments.config import SchemeName
from repro.experiments.sweep import fig15_16_workloads
from repro.metrics.summary import print_table

from benchmarks.common import bench_config, run_once

WORKLOADS = ("cachefollower", "websearch", "datamining", "hadoop")


def test_bench_fig15(benchmark):
    cells = run_once(
        benchmark, fig15_16_workloads, bench_config(),
        WORKLOADS, (SchemeName.NAIVE, SchemeName.FLEXPASS), (0.0, 0.5, 1.0),
    )
    rows = []
    for (wl, scheme, dep), cell in sorted(cells.items()):
        base = cells[(wl, scheme, 0.0)].p99_small_ms
        gain = (1 - cell.p99_small_ms / base) if base else float("nan")
        rows.append((wl, scheme, f"{dep:.0%}", cell.p99_small_ms,
                     f"{gain:+.0%}"))
    print_table("Figure 15: 99p small-flow FCT gain vs baseline",
                ("workload", "scheme", "deployed", "p99 small (ms)", "gain"),
                rows)
    # Shape: on every workload, FlexPass's mid-transition tail is no worse
    # than naïve's, and at least half the workloads see an outright
    # improvement at full deployment.
    improved = 0
    for wl in WORKLOADS:
        assert cells[(wl, "flexpass", 0.5)].p99_small_ms <= \
            cells[(wl, "naive", 0.5)].p99_small_ms * 1.05, wl
        if cells[(wl, "flexpass", 1.0)].p99_small_ms < \
                cells[(wl, "flexpass", 0.0)].p99_small_ms:
            improved += 1
    assert improved >= 2
