"""Figure 8: incast tail FCT — DCTCP times out, credit transports do not.

Paper: DCTCP experiences a timeout with more than 48 flows; ExpressPass and
FlexPass never time out, and FlexPass beats ExpressPass at high incast
degree thanks to its first-RTT reactive transmission.
"""

from repro.experiments.figures import fig08_incast

from benchmarks.common import run_once


def test_bench_fig08(benchmark):
    fig = run_once(benchmark, fig08_incast, n_flows_list=(8, 32, 64, 80))
    fig.print_report()
    # Shape 1: DCTCP hits RTOs at high incast degree.
    assert fig.timeouts["dctcp"][-1] > 0
    # Shape 2: the credit-based transports never time out.
    assert sum(fig.timeouts["expresspass"]) == 0
    assert sum(fig.timeouts["flexpass"]) == 0
    # Shape 3: at high degree the credit transports' tails beat DCTCP's RTO
    # spikes, and FlexPass stays at or below ExpressPass (first-RTT reactive
    # start; the two are within noise of each other at this scale).
    assert fig.tail_fct_ms["flexpass"][-1] < fig.tail_fct_ms["dctcp"][-1]
    assert fig.tail_fct_ms["flexpass"][-1] <= \
        fig.tail_fct_ms["expresspass"][-1] * 1.15
