"""Figure 16: overall average FCT across four realistic workloads.

Paper: FlexPass does "nearly no harm toward the overall average FCT during
deployment and after deployment" on all four workloads — utilization stays
high at every stage — while the naïve rollout inflates the average.
"""

from repro.experiments.config import SchemeName
from repro.experiments.sweep import fig15_16_workloads
from repro.metrics.summary import print_table

from benchmarks.common import bench_config, run_once

WORKLOADS = ("cachefollower", "websearch", "datamining", "hadoop")


def test_bench_fig16(benchmark):
    cells = run_once(
        benchmark, fig15_16_workloads, bench_config(),
        WORKLOADS, (SchemeName.NAIVE, SchemeName.FLEXPASS), (0.0, 0.5, 1.0),
    )
    rows = [
        (wl, scheme, f"{dep:.0%}", cell.avg_all_ms)
        for (wl, scheme, dep), cell in sorted(cells.items())
    ]
    print_table("Figure 16: overall average FCT",
                ("workload", "scheme", "deployed", "avg FCT (ms)"), rows)
    # Shape: FlexPass's mid-transition average FCT inflation is bounded and
    # never exceeds naïve's on any workload.
    for wl in WORKLOADS:
        base = cells[(wl, "flexpass", 0.0)].avg_all_ms
        assert cells[(wl, "flexpass", 0.5)].avg_all_ms < base * 2.0, wl
        assert cells[(wl, "flexpass", 0.5)].avg_all_ms <= \
            cells[(wl, "naive", 0.5)].avg_all_ms * 1.05, wl
