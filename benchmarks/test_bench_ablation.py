"""Ablations of FlexPass's design choices (DESIGN.md §6).

Not a paper figure: these isolate the mechanisms §4.2 argues for —
(1) proactive retransmission (the tail-latency optimization),
(2) the reactive sub-flow itself (spare-bandwidth utilization).
"""

from dataclasses import replace

from repro.core.flexpass import FlexPassParams, FlexPassReceiver, FlexPassSender
from repro.experiments.config import QueueSettings
from repro.experiments.scenarios import flexpass_queue_factory
from repro.metrics.summary import print_table
from repro.net.topology import DumbbellSpec, StarSpec, build_dumbbell, build_star
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, KB, MB, MILLIS
from repro.transports.base import FlowSpec, FlowStats
from repro.transports.credit_feedback import CREDIT_PER_DATA

from benchmarks.common import run_once


def _params(**kw):
    return FlexPassParams(
        max_credit_rate_bps=10 * GBPS * 0.5 * CREDIT_PER_DATA, **kw
    )


def _incast_run(params, n_flows=48):
    sim = Simulator()
    star = build_star(sim, flexpass_queue_factory(QueueSettings(wq=0.5)),
                      StarSpec(n_hosts=9, buffer_bytes=2 * MB))
    receiver = star.hosts[0]
    stats = []
    for k in range(n_flows):
        src = star.hosts[1:][k % 8]
        spec = FlowSpec(k + 1, src, receiver, 64 * KB, 0,
                        scheme="flexpass", group="new")
        st = FlowStats()
        FlexPassReceiver(sim, spec, st, params)
        sender = FlexPassSender(sim, spec, st, params)
        sim.at(0, sender.start)
        stats.append(st)
    sim.run(until=300 * MILLIS)
    fcts = [s.fct_ns() / 1e6 for s in stats if s.completed]
    return max(fcts) if fcts else float("inf"), len(fcts), len(stats)


def _solo_run(params):
    sim = Simulator()
    db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings(wq=0.5)),
                        DumbbellSpec(n_pairs=1))
    spec = FlowSpec(1, db.senders[0], db.receivers[0], 8 * MB, 0,
                    scheme="flexpass", group="new")
    st = FlowStats()
    FlexPassReceiver(sim, spec, st, params)
    sender = FlexPassSender(sim, spec, st, params)
    sim.at(0, sender.start)
    sim.run(until=80 * MILLIS)
    return st.fct_ns() / 1e6 if st.completed else float("inf")


def test_bench_ablation_proactive_rtx(benchmark):
    """Disabling proactive retransmission forces reactive tail losses to
    wait for the (re-enabled) reactive RTO — tail FCT suffers."""

    def run():
        with_rtx, _, _ = _incast_run(_params())
        without = _params(enable_proactive_rtx=False, enable_reactive_rto=True)
        without_rtx, _, _ = _incast_run(without)
        return with_rtx, without_rtx

    with_rtx, without_rtx = run_once(benchmark, run)
    print_table(
        "Ablation: proactive retransmission (48-flow incast tail FCT)",
        ("variant", "max FCT (ms)"),
        [("with proactive rtx", with_rtx),
         ("without (RTO fallback)", without_rtx)],
    )
    assert with_rtx <= without_rtx


def test_bench_ablation_reactive_subflow(benchmark):
    """Without the reactive sub-flow, a lone FlexPass flow is stuck at the
    w_q reservation and leaves half the link idle (§3.2's dilemma)."""

    def run():
        full = _solo_run(_params())
        proactive_only = _solo_run(_params(enable_reactive=False))
        return full, proactive_only

    full, proactive_only = run_once(benchmark, run)
    print_table(
        "Ablation: reactive sub-flow (lone 8 MB flow on idle 10G link)",
        ("variant", "FCT (ms)"),
        [("both sub-flows", full), ("proactive only", proactive_only)],
    )
    # proactive-only is limited to ~wq of the link: ~2x slower.
    assert proactive_only > full * 1.5
