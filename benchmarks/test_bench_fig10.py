"""Figure 10: FCT during the transition from DCTCP to the new transport.

Paper: naïve deployment inflates tail FCT up to 72% mid-transition while
FlexPass tracks the oracle WFQ, ends up to 44% below the baseline at full
deployment, and keeps the overall average FCT low throughout.
"""

from repro.experiments.config import SchemeName
from repro.experiments.sweep import deployment_sweep, fig10_rows, print_grid

from benchmarks.common import BENCH_DEPLOYMENTS, bench_config_large, run_once


def test_bench_fig10(benchmark):
    base = bench_config_large()
    grid = run_once(
        benchmark, deployment_sweep, base,
        (SchemeName.NAIVE, SchemeName.OWF, SchemeName.LAYERING,
         SchemeName.FLEXPASS),
        BENCH_DEPLOYMENTS,
    )
    print_grid(
        "Figure 10: 99p small-flow FCT and overall average FCT",
        fig10_rows(grid),
        ("scheme", "deployed", "p99 small (ms)", "avg (ms)", "censored"),
    )
    baseline = grid[("flexpass", 0.0)]
    # Shape 1: naïve deployment hurts tail FCT mid-transition far more than
    # FlexPass does.
    assert grid[("naive", 0.5)].p99_small_ms > \
        grid[("flexpass", 0.5)].p99_small_ms
    # Shape 2: FlexPass at full deployment beats the all-DCTCP baseline.
    assert grid[("flexpass", 1.0)].p99_small_ms < baseline.p99_small_ms
    # Shape 3: FlexPass never blows up the overall average during the
    # transition (paper: "nearly no harm"); naïve does.
    assert grid[("flexpass", 0.5)].avg_all_ms < baseline.avg_all_ms * 1.5
    assert grid[("naive", 0.5)].avg_all_ms > \
        grid[("flexpass", 0.5)].avg_all_ms
    # Shape 4: layering's window needlessly gates credit-released packets,
    # wasting bandwidth — its overall average FCT at full deployment is
    # clearly worse than FlexPass's (the paper's §6.2 criticism of LY).
    assert grid[("flexpass", 1.0)].avg_all_ms < \
        grid[("ly", 1.0)].avg_all_ms
