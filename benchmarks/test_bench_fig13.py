"""Figure 13: FCT standard deviation (predictability) by traffic group.

Paper: naïve deployment increases legacy small-flow FCT stddev by 127%,
drastically reducing predictability; FlexPass keeps the increase to 19%.
"""

from repro.experiments.config import SchemeName
from repro.experiments.sweep import deployment_sweep, fig13_rows, print_grid

from benchmarks.common import BENCH_DEPLOYMENTS, bench_config_large, run_once


def test_bench_fig13(benchmark):
    grid = run_once(
        benchmark, deployment_sweep, bench_config_large(),
        (SchemeName.NAIVE, SchemeName.FLEXPASS), BENCH_DEPLOYMENTS,
    )
    print_grid(
        "Figure 13: FCT stddev by group (legacy vs upgraded)",
        fig13_rows(grid),
        ("scheme", "deployed", "legacy stddev (ms)", "upgraded stddev (ms)"),
    )
    # Shape: mid-transition, legacy-flow FCT variance under naïve deployment
    # exceeds that under FlexPass.
    assert grid[("naive", 0.5)].stddev_small_legacy_ms > \
        grid[("flexpass", 0.5)].stddev_small_legacy_ms
