"""§6.2 "Bounded queue": Q1 occupancy during and after deployment.

Paper: the FlexPass queue stays far below the 150 kB selective-dropping
bound — at 50% deployment, 10.6 kB average (6.15 kB reactive) and 29 kB at
the 90th percentile (21 kB reactive); <0.1% of packets are selectively
dropped at full deployment.
"""

from repro.experiments.scenarios import _q1_seldrop_bytes
from repro.experiments.sweep import queue_occupancy_study
from repro.metrics.summary import print_table

from benchmarks.common import bench_config_large, run_once


def test_bench_queue_occupancy(benchmark):
    rows = run_once(benchmark, queue_occupancy_study, bench_config_large(),
                    (0.5, 1.0))
    print_table(
        "Bounded queue: FlexPass Q1 occupancy at ToR uplinks",
        ("deployed", "avg (kB)", "p90 (kB)", "avg red (kB)", "p90 red (kB)"),
        [(f"{d:.0%}", a, p, ar, pr) for d, a, p, ar, pr in rows],
    )
    cfg = bench_config_large()
    seldrop_kb = _q1_seldrop_bytes(cfg.queues, cfg.clos.rate_bps) / 1000
    for dep, avg, p90, avg_red, p90_red in rows:
        # Shape: occupancy stays well under the selective-dropping bound,
        # and red (reactive) bytes respect it absolutely.
        assert p90 < seldrop_kb
        assert avg < seldrop_kb / 2
        assert p90_red <= seldrop_kb
