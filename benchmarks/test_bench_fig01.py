"""Figure 1: motivation — proactive transports starve DCTCP without isolation.

Paper: ExpressPass takes ~95% of the bottleneck and DCTCP ends up using
about 5% of the link capacity (1a); 16 Homa flows likewise starve 16 DCTCP
flows (1b).
"""

from repro.experiments.figures import (
    fig01a_expresspass_vs_dctcp,
    fig01b_homa_vs_dctcp,
)

from benchmarks.common import run_once


def test_bench_fig01a(benchmark):
    fig = run_once(benchmark, fig01a_expresspass_vs_dctcp, duration_ms=20,
                   flow_mb=30)
    fig.print_report()
    # Shape: DCTCP collapses to a small fraction and is starved most of the
    # time; ExpressPass is never starved.
    assert fig.share("dctcp") < 0.2
    assert fig.starvation("dctcp") > 0.5
    assert fig.starvation("expresspass") < 0.1


def test_bench_fig01b(benchmark):
    fig = run_once(benchmark, fig01b_homa_vs_dctcp, duration_ms=20, flow_mb=6)
    fig.print_report()
    assert fig.share("homa") > fig.share("dctcp")
    assert fig.starvation("dctcp") > fig.starvation("homa")
