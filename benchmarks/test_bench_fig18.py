"""Figure 18: queue-weight (w_q) trade-off (Appendix A).

Paper: smaller w_q protects legacy flows during the transition but dilutes
the proactive reservation at full deployment; crucially, FlexPass is
*insensitive* to w_q compared to weighted-fair ExpressPass — no point in
the sweep is catastrophic.
"""

from repro.experiments.sweep import fig18_wq_sweep
from repro.metrics.summary import print_table

from benchmarks.common import bench_config, run_once

WQS = (0.4, 0.5, 0.6)


def test_bench_fig18(benchmark):
    points = run_once(benchmark, fig18_wq_sweep, bench_config(), WQS)
    print_table(
        "Figure 18: queue-weight sweep",
        ("w_q", "max legacy p99 degradation", "p99 small at full (ms)"),
        [(wq, f"{deg:+.0%}", p99) for wq, deg, p99 in points],
    )
    # Shape: FlexPass is insensitive to w_q — across the sweep, full-
    # deployment tail FCT varies by less than 2x (the paper's point is the
    # absence of a sharp penalty for mismatched weights).
    p99s = [p for _, _, p in points]
    assert max(p99s) < 2.0 * min(p99s)
